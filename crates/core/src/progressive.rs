//! The progressive optimization loop (Section 4.4, Figure 10).
//!
//! Execution proceeds vector-at-a-time. After every *ReopInt* vectors the
//! optimizer:
//!
//! 1. takes the performance-counter sample of the most recent vector
//!    (non-invasive — the counters were running anyway);
//! 2. infers per-predicate selectivities with the multi-start Nelder–Mead
//!    estimator of Section 4.2/4.3;
//! 3. reorders the PEO ascending by estimated selectivity and, if that
//!    differs from the running order, switches ("a JIT-compiled system
//!    would compile a new binary; a vectorized system chains pre-compiled
//!    primitives in the new order");
//! 4. executes one **trial vector** under the new order and compares the
//!    counters against the pre-switch vector: improvements keep the new
//!    order, deteriorations reinstate the old one.
//!
//! Skew is caught by the periodic re-sampling itself; correlation can
//! additionally be probed by occasional exploratory orders (Section 4.5),
//! enabled via [`ProgressiveConfig::explore_correlation`].
//!
//! ## One loop, two executors
//!
//! Sections 5.5–5.6 generalize the approach from predicate orders to
//! *operator* orders — expensive selections versus foreign-key join
//! filters. The loop itself is executor-agnostic: anything that can
//! compile an order, execute a row range, and describe its counter-model
//! geometry participates, via [`ProgressiveTarget`]. [`run_progressive`]
//! drives the multi-selection scan ([`CompiledSelection`]);
//! [`run_progressive_pipeline`] drives a [`Pipeline`] of mixed
//! selections and join filters, where the reorder decision ranks stages
//! by estimated **cost per input tuple** (an LLC-thrashing probe is not
//! comparable to a register compare) and the target *calibrates* each
//! probe's clustering from the sampled counters — the Equation-1
//! comparison of Section 5.5, with trial vectors doubling as measurement
//! probes for joins whose locality has never been observed.

use popt_cost::cycles::{stage_costs_per_input_tuple, CycleParams};
use popt_cost::estimate::{estimate_counters, PlanGeometry};
use popt_cost::markov::ChainSpec;
use popt_cpu::pmu::CounterDelta;
use popt_cpu::{CpuConfig, NumaPlacement, SimCpu};
use popt_solver::{estimate_selectivities, CalibrationSnapshot, EstimatorConfig, SampledCounters};
use popt_storage::Table;

use crate::error::EngineError;
use crate::exec::pipeline::Pipeline;
use crate::exec::program::CompiledProgram;
use crate::exec::scan::{CompiledSelection, VectorStats};
use crate::observe::{front_stage_key, morsel_stage_parts, record_fit_drift, ExecObservers};
use crate::plan::{order_by_cost_per_tuple, order_by_selectivity, Peo, SelectionPlan};

/// Streaming footprint one scanned column claims in the last-level
/// cache, for [`ProgressiveTarget::hot_set_bytes`] declarations: streamed
/// lines are touched once and evicted, so only a small in-flight window
/// (a few dozen lines of read-ahead) ever competes for capacity — unlike
/// a probed dimension, which wants to stay resident in full.
pub const STREAM_HOT_BYTES_PER_COLUMN: u64 = 4 * 1024;

/// Extra profiling weight a join-probe stage carries on top of its
/// instruction charge, standing in for its per-tuple memory stalls (an
/// LLC-hit latency's worth — attribution weighting only, never a cost
/// the simulation charges).
pub(crate) const PROFILE_PROBE_WEIGHT: f64 = 30.0;

/// Configuration of the progressive optimizer.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressiveConfig {
    /// Vectors between optimization attempts (the paper evaluates 10, 75
    /// and 200; short intervals react fastest, Section 5.3–5.4).
    pub reop_interval: usize,
    /// Selectivity estimator settings.
    pub estimator: EstimatorConfig,
    /// Reinstate the previous PEO if the trial vector deteriorates.
    pub revert_on_regression: bool,
    /// Relative cycles-per-tuple slack before a trial counts as a
    /// regression.
    pub regression_tolerance: f64,
    /// Periodically execute one vector under an exploratory PEO to detect
    /// correlation effects that the current order cannot reveal
    /// (Section 4.5).
    pub explore_correlation: bool,
    /// Cycles charged per estimator objective evaluation, accounting for
    /// the optimization time the paper discusses in Section 5.7.
    pub cycles_per_estimator_eval: u64,
    /// Optimization rounds for which a *reverted* order is remembered and
    /// not re-proposed. Correlated predicates (e.g. two bounds on one
    /// column, Section 4.5) make the independence-based reorder disagree
    /// with measured reality; without this memory the optimizer would pay
    /// a failed trial vector at every interval.
    pub rejection_ttl: usize,
}

impl Default for ProgressiveConfig {
    fn default() -> Self {
        Self {
            reop_interval: 10,
            estimator: EstimatorConfig::default(),
            revert_on_regression: true,
            regression_tolerance: 0.02,
            explore_correlation: true,
            cycles_per_estimator_eval: 60,
            rejection_ttl: 2,
        }
    }
}

/// One PEO switch performed during execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchEvent {
    /// Vector index at which the switch took effect.
    pub vector: usize,
    /// Order before the switch.
    pub from: Peo,
    /// Order after the switch.
    pub to: Peo,
    /// Whether the trial vector regressed and the switch was undone.
    pub reverted: bool,
    /// Whether this was an exploratory (correlation-probing) switch
    /// rather than an estimator-driven one.
    pub exploratory: bool,
}

/// Outcome of a full (baseline or progressive) query execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressiveReport {
    /// Qualifying tuples.
    pub qualified: u64,
    /// Aggregate sum.
    pub sum: i64,
    /// Total simulated cycles, including optimizer time.
    pub cycles: u64,
    /// Total simulated milliseconds.
    pub millis: f64,
    /// Vectors executed.
    pub vectors: usize,
    /// PEO switches, in order.
    pub switches: Vec<SwitchEvent>,
    /// Estimator invocations.
    pub estimates: usize,
    /// Cycles attributed to the optimizer itself.
    pub optimizer_cycles: u64,
    /// The order in effect when execution finished.
    pub final_peo: Peo,
    /// Total counters across the run.
    pub counters: CounterDelta,
    /// Per-vector cycle counts (for convergence plots).
    pub per_vector_cycles: Vec<u64>,
}

impl ProgressiveReport {
    // Private assembly helper for the two runners; the argument list is
    // the report's field list, so grouping them into a carrier struct
    // would just duplicate the type.
    #[allow(clippy::too_many_arguments)]
    fn from_run(
        accumulated: VectorStats,
        vectors: usize,
        switches: Vec<SwitchEvent>,
        estimates: usize,
        optimizer_cycles: u64,
        final_peo: Peo,
        per_vector_cycles: Vec<u64>,
        frequency_ghz: f64,
    ) -> Self {
        let cycles = accumulated.counters.cycles + optimizer_cycles;
        Self {
            qualified: accumulated.qualified,
            sum: accumulated.sum,
            cycles,
            millis: cycles as f64 / (frequency_ghz * 1e6),
            vectors,
            switches,
            estimates,
            optimizer_cycles,
            final_peo,
            counters: accumulated.counters,
            per_vector_cycles,
        }
    }
}

/// Vectorization parameters of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VectorConfig {
    /// Tuples per vector.
    pub vector_tuples: usize,
    /// Cap on the number of vectors (`None` = scan the whole table).
    pub max_vectors: Option<usize>,
}

impl VectorConfig {
    /// Validate and compute the vector ranges for a table of `rows`.
    pub fn ranges(&self, rows: usize) -> Result<Vec<(usize, usize)>, EngineError> {
        if self.vector_tuples == 0 {
            return Err(EngineError::InvalidVectorConfig("vector_tuples = 0".into()));
        }
        let mut out = Vec::new();
        let mut start = 0;
        while start < rows {
            let end = (start + self.vector_tuples).min(rows);
            out.push((start, end));
            start = end;
            if let Some(max) = self.max_vectors {
                if out.len() >= max {
                    break;
                }
            }
        }
        Ok(out)
    }
}

/// Execute `plan` with a fixed PEO — the paper's "common execution
/// pattern" baseline.
pub fn run_baseline(
    table: &Table,
    plan: &SelectionPlan,
    peo: &[usize],
    vectors: VectorConfig,
    cpu: &mut SimCpu,
) -> Result<ProgressiveReport, EngineError> {
    let compiled = CompiledSelection::compile(table, plan, peo)?;
    let ranges = vectors.ranges(table.rows())?;
    let mut total = VectorStats::zero();
    let mut per_vector = Vec::with_capacity(ranges.len());
    for &(start, end) in &ranges {
        let stats = compiled.run_range(cpu, start, end);
        per_vector.push(stats.counters.cycles);
        total.accumulate(&stats);
    }
    let freq = cpu.config().timing.frequency_ghz;
    Ok(ProgressiveReport::from_run(
        total,
        ranges.len(),
        Vec::new(),
        0,
        0,
        peo.to_vec(),
        per_vector,
        freq,
    ))
}

/// An executor the progressive loop can drive: it owns an order over its
/// stages, runs row ranges against the simulated CPU, and describes its
/// counter-model geometry to the selectivity estimator.
pub trait ProgressiveTarget {
    /// Rows available to scan.
    fn rows(&self) -> usize;

    /// The current evaluation order (plan/stage indices).
    fn order(&self) -> Peo;

    /// Switch to `order` — a JIT system would compile a new binary, a
    /// vectorized system re-chains its pre-compiled primitives.
    fn set_order(&mut self, order: &[usize]) -> Result<(), EngineError>;

    /// Execute rows `start..end` and return the range's measurements.
    fn run_range(&mut self, cpu: &mut SimCpu, start: usize, end: usize) -> VectorStats;

    /// Counter-model geometry of the current order for `n_input` tuples.
    /// `llc_bytes` is the *effective* last-level capacity of the core(s)
    /// executing the target — the full configured LLC on a private
    /// socket, the contention-shrunken share when a shared-socket pool
    /// has partitioned capacity among co-runners — so counter
    /// predictions (and with them the reorder decisions fitted against
    /// them) price contended miss rates.
    fn plan_geometry(&self, n_input: u64, cpu: &CpuConfig, llc_bytes: u64) -> PlanGeometry;

    /// [`ProgressiveTarget::plan_geometry`] as seen from one socket of a
    /// NUMA pool: join-probe stages additionally price the fraction of
    /// their dimension homed on a *remote* socket under `placement`, so
    /// two sockets fitting the same counters can rank the same stages
    /// differently — per-socket order divergence. The default ignores
    /// the topology (correct for streaming targets, whose geometry has
    /// no probes to price).
    fn plan_geometry_numa(
        &self,
        n_input: u64,
        cpu: &CpuConfig,
        llc_bytes: u64,
        placement: &NumaPlacement,
        socket: usize,
    ) -> PlanGeometry {
        let _ = (placement, socket);
        self.plan_geometry(n_input, cpu, llc_bytes)
    }

    /// Bytes the target wants resident in the LLC while it runs — the
    /// hot-set footprint a shared-socket pool's capacity partition
    /// divides the LLC by. Streaming targets claim only the
    /// [`STREAM_HOT_BYTES_PER_COLUMN`] in-flight window per column;
    /// targets that re-reference data structures (probed dimensions)
    /// claim them in full.
    fn hot_set_bytes(&self) -> u64 {
        STREAM_HOT_BYTES_PER_COLUMN
    }

    /// Propose an evaluation order given per-stage selectivity estimates
    /// (in current evaluation order).
    fn propose_order(&self, geom: &PlanGeometry, selectivities: &[f64]) -> Peo;

    /// Update internal calibration (e.g. probe clustering) from a sampled
    /// vector and the survivor estimate fitted to it. `geom` is the
    /// geometry the estimate was fitted against, i.e. it describes the
    /// order that produced the sample.
    fn calibrate(&mut self, geom: &PlanGeometry, sampled: &SampledCounters, survivors: &[f64]) {
        let _ = (geom, sampled, survivors);
    }

    /// An exploratory order that would let the target measure something
    /// it cannot observe under the current order (consumed at most once
    /// per opportunity — implementations must not return the same probe
    /// forever). The loop runs it as a trial vector: accept/revert
    /// semantics still apply, and the trial's sample feeds
    /// [`ProgressiveTarget::calibrate`].
    fn take_probe_order(&mut self) -> Option<Peo> {
        None
    }

    /// Whether trial vectors should be estimated and fed to
    /// [`ProgressiveTarget::calibrate`] even outside reopt rounds. Costs
    /// one estimator run per trial; targets without runtime calibration
    /// leave this off.
    fn wants_trial_calibration(&self) -> bool {
        false
    }

    /// Export the target's runtime-learned calibration so a later
    /// execution of the same workload template can start from it (`None`
    /// for targets that learn nothing at runtime).
    fn calibration_snapshot(&self) -> Option<CalibrationSnapshot> {
        None
    }

    /// Seed the target's calibration from a prior run's snapshot. A
    /// snapshot whose shape does not match the target is ignored — a
    /// wrong warm start may cost performance, never correctness, so the
    /// restore path degrades to a cold start rather than erroring.
    fn restore_calibration(&mut self, snapshot: &CalibrationSnapshot) {
        let _ = snapshot;
    }

    /// Literal-free per-stage keys, *plan*-indexed, for drift
    /// attribution: structurally identical queries map to the same keys
    /// regardless of their literals, so residual series aggregate across
    /// a workload template. The default keys by plan index.
    fn stage_keys(&self) -> Vec<u64> {
        (0..self.order().len() as u64).collect()
    }

    /// Intrinsic per-evaluation profiling weight of each stage,
    /// *plan*-indexed: the relative cost of pushing one tuple through
    /// the stage, used by the cycle profiler to split a morsel's
    /// measured cycles across its stages. Only ratios matter. The
    /// default weighs stages uniformly.
    fn stage_profile_weights(&self) -> Vec<f64> {
        vec![1.0; self.order().len()]
    }
}

/// The multi-selection scan as a progressive target: switching orders
/// recompiles the plan against the table.
pub(crate) struct ScanTarget<'p, 't> {
    pub(crate) table: &'t Table,
    pub(crate) plan: &'p SelectionPlan,
    pub(crate) compiled: CompiledSelection<'t>,
}

impl<'p, 't> ScanTarget<'p, 't> {
    pub(crate) fn new(
        table: &'t Table,
        plan: &'p SelectionPlan,
        initial_peo: &[usize],
    ) -> Result<Self, EngineError> {
        Ok(Self {
            table,
            plan,
            compiled: CompiledSelection::compile(table, plan, initial_peo)?,
        })
    }
}

impl ProgressiveTarget for ScanTarget<'_, '_> {
    fn rows(&self) -> usize {
        self.compiled.rows()
    }

    fn order(&self) -> Peo {
        self.compiled.peo().to_vec()
    }

    fn set_order(&mut self, order: &[usize]) -> Result<(), EngineError> {
        self.compiled = CompiledSelection::compile(self.table, self.plan, order)?;
        Ok(())
    }

    fn run_range(&mut self, cpu: &mut SimCpu, start: usize, end: usize) -> VectorStats {
        self.compiled.run_range(cpu, start, end)
    }

    fn plan_geometry(&self, n_input: u64, cpu: &CpuConfig, _llc_bytes: u64) -> PlanGeometry {
        // A multi-selection scan streams its columns and probes nothing,
        // so its counter model is LLC-capacity-independent.
        let chain = ChainSpec {
            states: cpu.predictor.states,
            not_taken_states: cpu.predictor.not_taken_states,
        };
        self.compiled
            .plan_geometry(n_input, chain, cpu.line_bytes() as u32)
    }

    fn hot_set_bytes(&self) -> u64 {
        // Pure streaming: one in-flight window per touched column.
        (self.plan.predicates.len() + self.plan.aggregate_columns.len()) as u64
            * STREAM_HOT_BYTES_PER_COLUMN
    }

    fn propose_order(&self, _geom: &PlanGeometry, selectivities: &[f64]) -> Peo {
        // Uniform per-predicate cost: the cost-per-tuple rank degenerates
        // to the ascending-selectivity rule of Section 4.4.
        order_by_selectivity(self.compiled.peo(), selectivities)
    }
}

/// Runtime-learned probe locality, shared by every target whose stages
/// include foreign-key joins ([`PipelineTarget`], [`CompiledTarget`]):
/// one clustering estimate per *plan* stage, which stages were ever
/// observed, and which already spent their measurement probe.
pub(crate) struct ProbeCalibration {
    /// Per plan-stage clustering estimate (1.0 = assume uniform random,
    /// the textbook-pessimistic prior; meaningless for selects).
    clustering: Vec<f64>,
    /// Whether the stage's clustering was ever calibrated from a sample.
    measured: Vec<bool>,
    /// Whether a measurement probe was already spent on the stage.
    probed: Vec<bool>,
}

impl ProbeCalibration {
    pub(crate) fn cold(stages: usize) -> Self {
        Self {
            clustering: vec![1.0; stages],
            measured: vec![false; stages],
            probed: vec![false; stages],
        }
    }

    pub(crate) fn clustering(&self) -> &[f64] {
        &self.clustering
    }

    /// Solve the front stage's clustering from a vector's L3 sample. Only
    /// the front probe is solved for: it sees every tuple of the vector,
    /// so its contribution dominates the L3 signal, while the later
    /// stages' (smaller) contributions are carried by their current
    /// estimates inside `geom`. The caller has checked that `front` is a
    /// join stage.
    fn calibrate_front(
        &mut self,
        front: usize,
        geom: &PlanGeometry,
        sampled: &SampledCounters,
        survivors: &[f64],
    ) {
        let predict_at = |clustering: f64| -> f64 {
            let mut g = geom.clone();
            if let Some(p) = g.probes[0].as_mut() {
                p.clustering = clustering;
            }
            estimate_counters(&g, survivors).l3_accesses
        };
        let lo = predict_at(0.0);
        let hi = predict_at(1.0);
        if hi - lo < 1.0 {
            // The probe produces no L3 signal (dimension resident above
            // the LLC) — nothing to learn, but the stage is observed.
            self.measured[front] = true;
            return;
        }
        let solved = ((sampled.l3_accesses as f64 - lo) / (hi - lo)).clamp(0.0, 1.0);
        let c = &mut self.clustering[front];
        // First observation replaces the prior; later ones smooth, so a
        // single skewed vector cannot flip a settled belief.
        *c = if self.measured[front] {
            0.5 * *c + 0.5 * solved
        } else {
            solved
        };
        self.measured[front] = true;
    }

    /// An order that moves the first never-observed, never-probed join to
    /// the front, spending its probe budget; `None` when nothing is left
    /// to learn (or the candidate already runs at the front).
    fn take_probe_order(
        &mut self,
        order: &[usize],
        is_join: impl Fn(usize) -> bool,
    ) -> Option<Peo> {
        for (pos, &j) in order.iter().enumerate() {
            if !is_join(j) || self.measured[j] || self.probed[j] {
                continue;
            }
            if pos == 0 {
                // Already at the front: the next calibration covers it.
                return None;
            }
            self.probed[j] = true;
            let mut probe = Vec::with_capacity(order.len());
            probe.push(j);
            probe.extend(order.iter().copied().filter(|&x| x != j));
            return Some(probe);
        }
        None
    }

    fn restore(&mut self, snapshot: &CalibrationSnapshot) {
        self.clustering = snapshot
            .clustering
            .iter()
            .map(|c| c.clamp(0.0, 1.0))
            .collect();
        self.measured = snapshot.measured.clone();
        // Measured stages need no measurement probe; unmeasured ones keep
        // their probe budget (`probed` stays false) so a template whose
        // earlier runs never observed a stage can still learn it.
    }
}

/// A filter pipeline (selections + foreign-key join filters) as a
/// progressive target. Orders are ranked by estimated cost per input
/// tuple, and each join stage's probe clustering is calibrated from the
/// counters whenever the stage runs at the front of the pipeline (the
/// position where its signal dominates the sample).
pub(crate) struct PipelineTarget<'p, 't> {
    pub(crate) pipeline: &'p mut Pipeline<'t>,
    cal: ProbeCalibration,
}

impl<'p, 't> PipelineTarget<'p, 't> {
    pub(crate) fn new(pipeline: &'p mut Pipeline<'t>) -> Self {
        let stages = pipeline.len();
        Self {
            pipeline,
            cal: ProbeCalibration::cold(stages),
        }
    }
}

impl ProgressiveTarget for PipelineTarget<'_, '_> {
    fn rows(&self) -> usize {
        self.pipeline.rows()
    }

    fn order(&self) -> Peo {
        self.pipeline.order().to_vec()
    }

    fn set_order(&mut self, order: &[usize]) -> Result<(), EngineError> {
        self.pipeline.reorder(order)
    }

    fn run_range(&mut self, cpu: &mut SimCpu, start: usize, end: usize) -> VectorStats {
        self.pipeline.run_range(cpu, start, end)
    }

    fn plan_geometry(&self, n_input: u64, cpu: &CpuConfig, llc_bytes: u64) -> PlanGeometry {
        self.pipeline
            .plan_geometry(n_input, cpu, llc_bytes, self.cal.clustering())
    }

    fn plan_geometry_numa(
        &self,
        n_input: u64,
        cpu: &CpuConfig,
        llc_bytes: u64,
        placement: &NumaPlacement,
        socket: usize,
    ) -> PlanGeometry {
        self.pipeline.plan_geometry_numa(
            n_input,
            cpu,
            llc_bytes,
            self.cal.clustering(),
            placement,
            socket,
        )
    }

    fn hot_set_bytes(&self) -> u64 {
        self.pipeline.hot_set_bytes()
    }

    fn propose_order(&self, geom: &PlanGeometry, selectivities: &[f64]) -> Peo {
        let costs = stage_costs_per_input_tuple(
            geom,
            &self.pipeline.stage_instructions(),
            selectivities,
            &CycleParams::default(),
        );
        order_by_cost_per_tuple(self.pipeline.order(), &costs, selectivities)
    }

    fn calibrate(&mut self, geom: &PlanGeometry, sampled: &SampledCounters, survivors: &[f64]) {
        let front = self.pipeline.order()[0];
        if !self.pipeline.op(front).is_join() {
            return;
        }
        self.cal.calibrate_front(front, geom, sampled, survivors);
    }

    fn take_probe_order(&mut self) -> Option<Peo> {
        let order = self.pipeline.order().to_vec();
        self.cal
            .take_probe_order(&order, |j| self.pipeline.op(j).is_join())
    }

    fn wants_trial_calibration(&self) -> bool {
        true
    }

    fn calibration_snapshot(&self) -> Option<CalibrationSnapshot> {
        Some(CalibrationSnapshot::new(
            self.cal.clustering.clone(),
            self.cal.measured.clone(),
        ))
    }

    fn restore_calibration(&mut self, snapshot: &CalibrationSnapshot) {
        if !snapshot.matches(self.pipeline.len()) {
            return;
        }
        self.cal.restore(snapshot);
    }

    fn stage_profile_weights(&self) -> Vec<f64> {
        // `stage_instructions` is evaluation-ordered; map it back to plan
        // indices and surcharge join probes for their memory stalls.
        let order = self.pipeline.order();
        let instr = self.pipeline.stage_instructions();
        let mut weights = vec![1.0; order.len()];
        for (k, &j) in order.iter().enumerate() {
            let probe = if self.pipeline.op(j).is_join() {
                PROFILE_PROBE_WEIGHT
            } else {
                0.0
            };
            weights[j] = instr.get(k).copied().unwrap_or(1.0) + probe;
        }
        weights
    }
}

/// A [`CompiledProgram`] as a progressive target — the frontend's
/// counterpart of [`PipelineTarget`], with identical ranking, probe
/// calibration, and trial semantics. The one difference is snapshot
/// identity: compiled programs key their calibration to the program's
/// literal-free [`CompiledProgram::stage_keys`], so a cached snapshot
/// warm-starts any query of the same *structure* regardless of its
/// literals, and is ignored for a structurally different program even
/// when the stage count happens to match.
pub struct CompiledTarget<'p, 't> {
    program: &'p mut CompiledProgram<'t>,
    cal: ProbeCalibration,
}

impl<'p, 't> CompiledTarget<'p, 't> {
    /// Wrap `program` with cold calibration state.
    pub fn new(program: &'p mut CompiledProgram<'t>) -> Self {
        let stages = program.len();
        Self {
            program,
            cal: ProbeCalibration::cold(stages),
        }
    }

    /// The wrapped program (for sharding).
    pub(crate) fn program(&self) -> &CompiledProgram<'t> {
        self.program
    }
}

impl ProgressiveTarget for CompiledTarget<'_, '_> {
    fn rows(&self) -> usize {
        self.program.rows()
    }

    fn order(&self) -> Peo {
        self.program.order().to_vec()
    }

    fn set_order(&mut self, order: &[usize]) -> Result<(), EngineError> {
        self.program.reorder(order)
    }

    fn run_range(&mut self, cpu: &mut SimCpu, start: usize, end: usize) -> VectorStats {
        self.program.run_range(cpu, start, end)
    }

    fn plan_geometry(&self, n_input: u64, cpu: &CpuConfig, llc_bytes: u64) -> PlanGeometry {
        self.program
            .plan_geometry(n_input, cpu, llc_bytes, self.cal.clustering())
    }

    fn plan_geometry_numa(
        &self,
        n_input: u64,
        cpu: &CpuConfig,
        llc_bytes: u64,
        placement: &NumaPlacement,
        socket: usize,
    ) -> PlanGeometry {
        self.program.plan_geometry_numa(
            n_input,
            cpu,
            llc_bytes,
            self.cal.clustering(),
            placement,
            socket,
        )
    }

    fn hot_set_bytes(&self) -> u64 {
        self.program.hot_set_bytes()
    }

    fn propose_order(&self, geom: &PlanGeometry, selectivities: &[f64]) -> Peo {
        let costs = stage_costs_per_input_tuple(
            geom,
            &self.program.stage_instructions(),
            selectivities,
            &CycleParams::default(),
        );
        order_by_cost_per_tuple(self.program.order(), &costs, selectivities)
    }

    fn calibrate(&mut self, geom: &PlanGeometry, sampled: &SampledCounters, survivors: &[f64]) {
        let front = self.program.order()[0];
        if !self.program.stage(front).is_join() {
            return;
        }
        self.cal.calibrate_front(front, geom, sampled, survivors);
    }

    fn take_probe_order(&mut self) -> Option<Peo> {
        let order = self.program.order().to_vec();
        self.cal
            .take_probe_order(&order, |j| self.program.stage(j).is_join())
    }

    fn wants_trial_calibration(&self) -> bool {
        true
    }

    fn calibration_snapshot(&self) -> Option<CalibrationSnapshot> {
        Some(CalibrationSnapshot::keyed(
            self.cal.clustering.clone(),
            self.cal.measured.clone(),
            self.program.stage_keys(),
        ))
    }

    fn restore_calibration(&mut self, snapshot: &CalibrationSnapshot) {
        if !snapshot.matches_keys(&self.program.stage_keys()) {
            return;
        }
        self.cal.restore(snapshot);
    }

    fn stage_keys(&self) -> Vec<u64> {
        self.program.stage_keys()
    }

    fn stage_profile_weights(&self) -> Vec<f64> {
        let order = self.program.order();
        let instr = self.program.stage_instructions();
        let mut weights = vec![1.0; order.len()];
        for (k, &j) in order.iter().enumerate() {
            let probe = if self.program.stage(j).is_join() {
                PROFILE_PROBE_WEIGHT
            } else {
                0.0
            };
            weights[j] = instr.get(k).copied().unwrap_or(1.0) + probe;
        }
        weights
    }
}

/// Execute `plan` starting from `initial_peo` with progressive
/// optimization enabled.
pub fn run_progressive(
    table: &Table,
    plan: &SelectionPlan,
    initial_peo: &[usize],
    vectors: VectorConfig,
    cpu: &mut SimCpu,
    config: &ProgressiveConfig,
) -> Result<ProgressiveReport, EngineError> {
    let mut target = ScanTarget::new(table, plan, initial_peo)?;
    run_progressive_target(&mut target, vectors, cpu, config)
}

/// Execute a filter pipeline starting from `initial_order` with
/// progressive operator reordering enabled (Sections 5.5–5.6): stages are
/// reordered by estimated cost per input tuple, with probe clustering
/// calibrated from the sampled counters and trial-vector accept/revert
/// semantics shared with the scan path.
///
/// The pipeline is left in the final order the run converged to.
pub fn run_progressive_pipeline(
    pipeline: &mut Pipeline<'_>,
    initial_order: &[usize],
    vectors: VectorConfig,
    cpu: &mut SimCpu,
    config: &ProgressiveConfig,
) -> Result<ProgressiveReport, EngineError> {
    pipeline.reorder(initial_order)?;
    let mut target = PipelineTarget::new(pipeline);
    run_progressive_target(&mut target, vectors, cpu, config)
}

/// [`run_progressive_pipeline`] for a [`CompiledProgram`] — the execution
/// entry point the frontend's `plan → passes → compile` chain feeds into.
///
/// The program is left in the final order the run converged to.
pub fn run_progressive_program(
    program: &mut CompiledProgram<'_>,
    initial_order: &[usize],
    vectors: VectorConfig,
    cpu: &mut SimCpu,
    config: &ProgressiveConfig,
) -> Result<ProgressiveReport, EngineError> {
    run_progressive_program_observed(
        program,
        initial_order,
        vectors,
        cpu,
        config,
        &ExecObservers::none(),
    )
}

/// [`run_progressive_program`] with observers attached (see
/// [`run_progressive_target_observed`] for the observation contract).
pub fn run_progressive_program_observed(
    program: &mut CompiledProgram<'_>,
    initial_order: &[usize],
    vectors: VectorConfig,
    cpu: &mut SimCpu,
    config: &ProgressiveConfig,
    obs: &ExecObservers,
) -> Result<ProgressiveReport, EngineError> {
    program.reorder(initial_order)?;
    let mut target = CompiledTarget::new(program);
    run_progressive_target_observed(&mut target, vectors, cpu, config, obs)
}

/// The §4.4 loop over any [`ProgressiveTarget`]: sample counters per
/// vector, estimate per-stage pass rates, reorder, trial, revert on
/// regression, with stall-triggered exploration (Section 4.5), rejection
/// memory, and measurement probes for targets that calibrate at runtime.
pub fn run_progressive_target<T: ProgressiveTarget>(
    target: &mut T,
    vectors: VectorConfig,
    cpu: &mut SimCpu,
    config: &ProgressiveConfig,
) -> Result<ProgressiveReport, EngineError> {
    run_progressive_target_observed(target, vectors, cpu, config, &ExecObservers::none())
}

/// [`run_progressive_target`] with observers attached: the profiler
/// receives every vector's cycles (attributed across the stages of the
/// order it ran under, worker 0 / socket 0, zero idle) and every
/// estimator charge; the drift observatory receives every fit's
/// predicted-vs-observed residuals. Observation is non-invasive — the
/// report is bit-identical with and without observers.
pub fn run_progressive_target_observed<T: ProgressiveTarget>(
    target: &mut T,
    vectors: VectorConfig,
    cpu: &mut SimCpu,
    config: &ProgressiveConfig,
    obs: &ExecObservers,
) -> Result<ProgressiveReport, EngineError> {
    if config.reop_interval == 0 {
        return Err(EngineError::InvalidVectorConfig("reop_interval = 0".into()));
    }
    let ranges = vectors.ranges(target.rows())?;
    let cpu_cfg = cpu.config().clone();
    // The capacity every fit prices against: this core's LLC slice (the
    // full socket unless a shared pool shrank it).
    let llc_bytes = cpu.llc_effective_bytes();

    let mut total = VectorStats::zero();
    let mut per_vector = Vec::with_capacity(ranges.len());
    let mut switches: Vec<SwitchEvent> = Vec::new();
    let mut estimates = 0usize;
    let mut optimizer_cycles = 0u64;
    // Pending trial: (pre-switch cycles-per-tuple, index into `switches`).
    let mut pending_trial: Option<(f64, usize)> = None;
    let mut reopt_count = 0usize;
    // Reopt round of the most recent *accepted* switch (for stall
    // detection).
    let mut last_accept_reopt = 0usize;
    // Recently reverted orders: (order, reopt round it was rejected at).
    let mut rejected: Vec<(Peo, usize)> = Vec::new();
    // Cycles-per-tuple of the most recent vector, for end-of-scan trial
    // resolution.
    let mut last_cpt = 0.0f64;
    // Observation-only state: literal-free keys and profiling weights
    // (plan-indexed, order-independent), and the profiler's timeline
    // position (executed + optimizer cycles so far).
    let stage_keys = target.stage_keys();
    let plan_weights = target.stage_profile_weights();
    let mut prof_pos = 0u64;

    for (v_idx, &(start, end)) in ranges.iter().enumerate() {
        let stats = target.run_range(cpu, start, end);
        if let Some(prof) = &obs.profiler {
            // `order()` still names the order this vector ran under —
            // switches happen below, after the measurements are taken.
            let parts = morsel_stage_parts(&target.order(), &plan_weights, &stats);
            prof.record_morsel(0, 0, prof_pos, &parts);
        }
        prof_pos += stats.counters.cycles;
        per_vector.push(stats.counters.cycles);
        last_cpt = stats.cycles_per_tuple();

        // Estimate fitted to this vector's sample, valid only while the
        // order that produced the sample is still in effect (a revert
        // invalidates it). Lets a trial resolution that coincides with a
        // reopt round share one estimator run instead of paying twice.
        let mut vector_estimate = None;
        // Whether a revert made this vector's sample describe an order
        // that is no longer the current one.
        let mut sample_is_stale = false;

        // Resolve an outstanding trial against this vector's counters.
        if let Some((prev_cpt, switch_idx)) = pending_trial.take() {
            // Trial vectors double as measurement opportunities: estimate
            // the sample *under the order that produced it* and let the
            // target calibrate, before any revert discards that order.
            if target.wants_trial_calibration() {
                let sampled = stats.sampled_counters();
                let geom = target.plan_geometry(sampled.n_input, &cpu_cfg, llc_bytes);
                let estimate = estimate_selectivities(&geom, &sampled, &config.estimator);
                estimates += 1;
                let spent = estimate.evaluations as u64 * config.cycles_per_estimator_eval;
                optimizer_cycles += spent;
                if let Some(prof) = &obs.profiler {
                    prof.record_optimizer(0, 0, prof_pos, spent);
                }
                prof_pos += spent;
                if let Some(drift) = &obs.drift {
                    // The trial order that produced the sample is still
                    // in effect here (a revert happens below).
                    record_fit_drift(
                        drift,
                        front_stage_key(&stage_keys, &target.order()),
                        &geom,
                        &sampled,
                        &estimate.survivors,
                        stats.cycles_per_tuple(),
                    );
                }
                target.calibrate(&geom, &sampled, &estimate.survivors);
                vector_estimate = Some((geom, estimate));
            }
            let cpt = stats.cycles_per_tuple();
            if config.revert_on_regression && cpt > prev_cpt * (1.0 + config.regression_tolerance) {
                let old = switches[switch_idx].from.clone();
                rejected.push((target.order(), reopt_count));
                target.set_order(&old)?;
                switches[switch_idx].reverted = true;
                vector_estimate = None;
                sample_is_stale = true;
            } else {
                last_accept_reopt = reopt_count;
            }
        }

        total.accumulate(&stats);

        // Optimization point?
        let at_interval = (v_idx + 1) % config.reop_interval == 0;
        let more_vectors_remain = v_idx + 1 < ranges.len();
        if !(at_interval && more_vectors_remain) {
            continue;
        }
        reopt_count += 1;
        // Age out rejections every reopt round — including rounds that
        // end up exploratory — so a stale revert cannot suppress a
        // proposal for longer than its TTL.
        rejected.retain(|(_, at)| reopt_count - at <= config.rejection_ttl);

        // Explore a rotated order when optimization has stalled
        // (Section 4.5: "periodically execute different PEOs"). The tail
        // predicate is the one the sample says least about — it sees the
        // fewest tuples — so rotating it to the front gives it full
        // exposure and escapes local optima of the under-determined
        // estimation. Runs that keep converging never pay for this.
        // "Stalled" requires both no recent accepted switch AND an active
        // disagreement (a recently rejected proposal): a converged run
        // where the estimator proposes nothing never pays for exploration.
        let stalled = reopt_count >= last_accept_reopt + 3 && !rejected.is_empty();
        if config.explore_correlation && stalled && reopt_count % 2 == 0 {
            let current = target.order();
            let mut explored = current.clone();
            explored.rotate_right(1);
            if explored != current {
                switches.push(SwitchEvent {
                    vector: v_idx + 1,
                    from: current,
                    to: explored.clone(),
                    reverted: false,
                    exploratory: true,
                });
                pending_trial = Some((stats.cycles_per_tuple(), switches.len() - 1));
                target.set_order(&explored)?;
            }
            continue;
        }

        // Measurement probe: an order the target wants to observe once
        // (e.g. an unmeasured join moved to the front). Runs under the
        // same trial semantics as any other switch.
        if let Some(probe) = target.take_probe_order() {
            let current = target.order();
            if probe != current {
                switches.push(SwitchEvent {
                    vector: v_idx + 1,
                    from: current,
                    to: probe.clone(),
                    reverted: false,
                    exploratory: true,
                });
                pending_trial = Some((stats.cycles_per_tuple(), switches.len() - 1));
                target.set_order(&probe)?;
                continue;
            }
        }

        // Estimate selectivities from the most recent vector's sample,
        // reusing the trial-resolution fit when this vector was a trial
        // whose order survived.
        let (geom, estimate) = match vector_estimate {
            Some(fitted) => fitted,
            None => {
                let sampled = stats.sampled_counters();
                let geom = target.plan_geometry(sampled.n_input, &cpu_cfg, llc_bytes);
                let estimate = estimate_selectivities(&geom, &sampled, &config.estimator);
                estimates += 1;
                let spent = estimate.evaluations as u64 * config.cycles_per_estimator_eval;
                optimizer_cycles += spent;
                if let Some(prof) = &obs.profiler {
                    prof.record_optimizer(0, 0, prof_pos, spent);
                }
                prof_pos += spent;
                // A reverted trial leaves the sample describing the trial
                // order while `geom` describes the reinstated one —
                // calibrating (or scoring drift) against that mismatch
                // would corrupt a settled belief with a residual the
                // model never produced.
                if !sample_is_stale {
                    if let Some(drift) = &obs.drift {
                        record_fit_drift(
                            drift,
                            front_stage_key(&stage_keys, &target.order()),
                            &geom,
                            &sampled,
                            &estimate.survivors,
                            stats.cycles_per_tuple(),
                        );
                    }
                    target.calibrate(&geom, &sampled, &estimate.survivors);
                }
                (geom, estimate)
            }
        };

        let new_order = target.propose_order(&geom, &estimate.selectivities);
        // Skip orders a recent trial already rejected (correlation guard).
        if rejected.iter().any(|(order, _)| order == &new_order) {
            continue;
        }
        let current = target.order();
        if new_order != current {
            switches.push(SwitchEvent {
                vector: v_idx + 1,
                from: current,
                to: new_order.clone(),
                reverted: false,
                exploratory: false,
            });
            pending_trial = Some((stats.cycles_per_tuple(), switches.len() - 1));
            target.set_order(&new_order)?;
        }
    }

    // Resolve a trial left outstanding at end of scan (defensive: the
    // loop above only schedules trials when another vector remains, but a
    // switch must never stay silently accepted without its comparison).
    if let Some((prev_cpt, switch_idx)) = pending_trial.take() {
        if config.revert_on_regression && last_cpt > prev_cpt * (1.0 + config.regression_tolerance)
        {
            let old = switches[switch_idx].from.clone();
            target.set_order(&old)?;
            switches[switch_idx].reverted = true;
        }
    }

    if let Some(prof) = &obs.profiler {
        // One lane, no co-runners: wall == busy, idle == 0. `prof_pos`
        // accumulated exactly executed + optimizer cycles, so the
        // conservation law holds bit-exactly.
        prof.finish(&[prof_pos]);
    }

    let freq = cpu.config().timing.frequency_ghz;
    Ok(ProgressiveReport::from_run(
        total,
        ranges.len(),
        switches,
        estimates,
        optimizer_cycles,
        target.order(),
        per_vector,
        freq,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{CompareOp, Predicate};
    use popt_cpu::CpuConfig;
    use popt_storage::{AddressSpace, ColumnData, Table};

    /// Table where predicate selectivities are very different: `lo` passes
    /// 5%, `mid` 50%, `hi` 95% — the optimal PEO is [lo, mid, hi].
    fn skewed_table(n: usize) -> Table {
        let mut space = AddressSpace::new();
        let mut t = Table::new("t");
        let pseudo = |i: usize, salt: u64| -> i32 {
            let x = (i as u64).wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17) ^ salt;
            ((x >> 33) % 100) as i32
        };
        t.add_column(
            "lo",
            ColumnData::I32((0..n).map(|i| pseudo(i, 1)).collect()),
            &mut space,
        );
        t.add_column(
            "mid",
            ColumnData::I32((0..n).map(|i| pseudo(i, 2)).collect()),
            &mut space,
        );
        t.add_column(
            "hi",
            ColumnData::I32((0..n).map(|i| pseudo(i, 3)).collect()),
            &mut space,
        );
        t
    }

    fn skewed_plan() -> SelectionPlan {
        SelectionPlan::new(
            vec![
                Predicate::new("lo", CompareOp::Lt, 5),
                Predicate::new("mid", CompareOp::Lt, 50),
                Predicate::new("hi", CompareOp::Lt, 95),
            ],
            vec![],
        )
        .unwrap()
    }

    fn vectors() -> VectorConfig {
        VectorConfig {
            vector_tuples: 2048,
            max_vectors: None,
        }
    }

    #[test]
    fn baseline_and_progressive_agree_on_results() {
        let t = skewed_table(16_384);
        let plan = skewed_plan();
        let worst = vec![2usize, 1, 0];
        let mut cpu1 = SimCpu::new(CpuConfig::ivy_bridge());
        let base = run_baseline(&t, &plan, &worst, vectors(), &mut cpu1).unwrap();
        let mut cpu2 = SimCpu::new(CpuConfig::ivy_bridge());
        let prog = run_progressive(
            &t,
            &plan,
            &worst,
            vectors(),
            &mut cpu2,
            &ProgressiveConfig {
                reop_interval: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(base.qualified, prog.qualified);
        assert_eq!(base.sum, prog.sum);
    }

    #[test]
    fn progressive_converges_to_ascending_selectivity_order() {
        let t = skewed_table(16_384);
        let plan = skewed_plan();
        let worst = vec![2usize, 1, 0]; // hi, mid, lo: descending selectivity
        let mut cpu = SimCpu::new(CpuConfig::ivy_bridge());
        let prog = run_progressive(
            &t,
            &plan,
            &worst,
            vectors(),
            &mut cpu,
            &ProgressiveConfig {
                reop_interval: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(
            prog.final_peo,
            vec![0, 1, 2],
            "switches: {:?}",
            prog.switches
        );
        assert!(!prog.switches.is_empty());
        assert!(prog.estimates > 0);
    }

    #[test]
    fn progressive_beats_bad_baseline() {
        let t = skewed_table(16_384);
        let plan = skewed_plan();
        let worst = vec![2usize, 1, 0];
        let mut cpu1 = SimCpu::new(CpuConfig::ivy_bridge());
        let base = run_baseline(&t, &plan, &worst, vectors(), &mut cpu1).unwrap();
        let mut cpu2 = SimCpu::new(CpuConfig::ivy_bridge());
        let prog = run_progressive(
            &t,
            &plan,
            &worst,
            vectors(),
            &mut cpu2,
            &ProgressiveConfig {
                reop_interval: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            prog.cycles < base.cycles,
            "progressive {} !< baseline {}",
            prog.cycles,
            base.cycles
        );
    }

    #[test]
    fn good_initial_order_is_left_alone() {
        let t = skewed_table(16_384);
        let plan = skewed_plan();
        let best = vec![0usize, 1, 2];
        let mut cpu = SimCpu::new(CpuConfig::ivy_bridge());
        let prog = run_progressive(
            &t,
            &plan,
            &best,
            vectors(),
            &mut cpu,
            &ProgressiveConfig {
                reop_interval: 2,
                ..Default::default()
            },
        )
        .unwrap();
        // No net change of order; sporadic trial switches must revert.
        assert_eq!(prog.final_peo, best);
    }

    #[test]
    fn zero_reop_interval_is_rejected() {
        let t = skewed_table(1024);
        let plan = skewed_plan();
        let mut cpu = SimCpu::new(CpuConfig::tiny_test());
        let err = run_progressive(
            &t,
            &plan,
            &[0, 1, 2],
            vectors(),
            &mut cpu,
            &ProgressiveConfig {
                reop_interval: 0,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::InvalidVectorConfig(_)));
    }

    #[test]
    fn vector_ranges_cover_table_exactly() {
        let v = VectorConfig {
            vector_tuples: 1000,
            max_vectors: None,
        };
        let ranges = v.ranges(2500).unwrap();
        assert_eq!(ranges, vec![(0, 1000), (1000, 2000), (2000, 2500)]);
        let capped = VectorConfig {
            vector_tuples: 1000,
            max_vectors: Some(2),
        };
        assert_eq!(capped.ranges(2500).unwrap().len(), 2);
    }

    #[test]
    fn optimizer_cycles_are_accounted() {
        let t = skewed_table(8192);
        let plan = skewed_plan();
        let mut cpu = SimCpu::new(CpuConfig::ivy_bridge());
        let prog = run_progressive(
            &t,
            &plan,
            &[2, 1, 0],
            vectors(),
            &mut cpu,
            &ProgressiveConfig {
                reop_interval: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(prog.optimizer_cycles > 0);
        assert_eq!(prog.cycles, prog.counters.cycles + prog.optimizer_cycles);
    }

    #[test]
    fn rejection_ttl_gates_reproposal_of_reverted_orders() {
        // Force every trial to regress (negative tolerance) with
        // exploration off: the estimator keeps proposing the same better
        // order, each proposal is reverted, and the rejection memory must
        // suppress the re-proposal for exactly `rejection_ttl` rounds —
        // pruned every reopt round, so proposals resume on schedule.
        let t = skewed_table(16_384);
        let plan = skewed_plan();
        let ttl = 3usize;
        let mut cpu = SimCpu::new(CpuConfig::ivy_bridge());
        let prog = run_progressive(
            &t,
            &plan,
            &[2, 1, 0],
            VectorConfig {
                vector_tuples: 512,
                max_vectors: None,
            },
            &mut cpu,
            &ProgressiveConfig {
                reop_interval: 1,
                regression_tolerance: -1.0,
                explore_correlation: false,
                rejection_ttl: ttl,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(prog.switches.iter().all(|s| s.reverted));
        assert!(
            prog.switches.len() >= 2,
            "rejections must age out and re-propose: {:?}",
            prog.switches
        );
        // With reop_interval = 1, rounds advance one per vector: two
        // proposals of the same order must be separated by more than the
        // TTL, and pruning every round means they are not separated by
        // much more (trial + revert + ttl rounds of suppression).
        for pair in prog.switches.windows(2) {
            if pair[0].to != pair[1].to {
                continue;
            }
            let gap = pair[1].vector - pair[0].vector;
            assert!(gap > ttl, "re-proposed within TTL: {:?}", prog.switches);
            assert!(
                gap <= ttl + 3,
                "pruning skipped rounds: {:?}",
                prog.switches
            );
        }
    }

    #[test]
    fn trial_on_last_vector_is_still_resolved() {
        // Schedule the only possible switch so that its trial vector is
        // the final vector of the scan: the regression must be detected
        // and the switch reverted rather than silently accepted.
        let t = skewed_table(4096);
        let plan = skewed_plan();
        let mut cpu = SimCpu::new(CpuConfig::ivy_bridge());
        let prog = run_progressive(
            &t,
            &plan,
            &[2, 1, 0],
            VectorConfig {
                vector_tuples: 2048,
                max_vectors: None, // 2 vectors: reopt after v0, trial = v1
            },
            &mut cpu,
            &ProgressiveConfig {
                reop_interval: 1,
                regression_tolerance: -1.0, // every trial "regresses"
                explore_correlation: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(prog.vectors, 2);
        assert_eq!(prog.switches.len(), 1, "{:?}", prog.switches);
        assert!(
            prog.switches[0].reverted,
            "last-vector trial left unresolved: {:?}",
            prog.switches
        );
        assert_eq!(prog.final_peo, vec![2, 1, 0], "revert must restore order");
    }

    mod pipeline {
        use super::*;
        use crate::exec::pipeline::{FilterOp, Pipeline};
        use popt_cpu::CacheLevelConfig;

        /// Small hierarchy (4/16/64 KiB) so a modest dimension table
        /// thrashes the LLC.
        fn small_cache_cpu() -> CpuConfig {
            let mut cfg = CpuConfig::xeon_e5_2630_v2();
            cfg.levels = vec![
                CacheLevelConfig {
                    capacity_bytes: 4 * 1024,
                    line_bytes: 64,
                    ways: 8,
                    hit_latency_cycles: 0,
                },
                CacheLevelConfig {
                    capacity_bytes: 16 * 1024,
                    line_bytes: 64,
                    ways: 8,
                    hit_latency_cycles: 10,
                },
                CacheLevelConfig {
                    capacity_bytes: 64 * 1024,
                    line_bytes: 64,
                    ways: 16,
                    hit_latency_cycles: 30,
                },
            ];
            cfg
        }

        /// Fact with a co-clustered and a pseudo-random FK over a
        /// dimension that exceeds the 64 KiB LLC, plus a value column.
        fn tables(n: usize) -> (Table, Table) {
            let dim_n = n / 4; // 4 B * n/4 = n bytes >> LLC for n = 128 Ki
            let mut space = AddressSpace::new();
            let mut fact = Table::new("fact");
            fact.add_column(
                "fk_seq",
                ColumnData::I32((0..n).map(|i| (i / 4) as i32).collect()),
                &mut space,
            );
            // A hashed (not merely strided) key stream: fixed strides
            // leave quasi-periodic locality the caches exploit.
            fact.add_column(
                "fk_rand",
                ColumnData::I32(
                    (0..n)
                        .map(|i| {
                            let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33;
                            (h % dim_n as u64) as i32
                        })
                        .collect(),
                ),
                &mut space,
            );
            fact.add_column(
                "val",
                ColumnData::I32((0..n).map(|i| (i % 100) as i32).collect()),
                &mut space,
            );
            let mut dim_space = AddressSpace::new();
            let mut dim = Table::new("dim");
            dim.add_column(
                "payload",
                ColumnData::I32((0..dim_n).map(|k| (k % 100) as i32).collect()),
                &mut dim_space,
            );
            (fact, dim)
        }

        fn pipeline_vectors() -> VectorConfig {
            VectorConfig {
                vector_tuples: 4096,
                max_vectors: None,
            }
        }

        fn config() -> ProgressiveConfig {
            ProgressiveConfig {
                reop_interval: 2,
                ..Default::default()
            }
        }

        /// Expensive selection + LLC-thrashing random join: the selection
        /// belongs in front. Start join-first and let the loop fix it.
        #[test]
        fn converges_to_selection_first_for_random_join() {
            let n = 1 << 17;
            let (fact, dim) = tables(n);
            let build = |order: &[usize]| {
                let sel = FilterOp::select(&fact, "val", CompareOp::Lt, 50, 0, 50).unwrap();
                let join = FilterOp::join_filter(
                    &fact,
                    "fk_rand",
                    &dim,
                    "payload",
                    CompareOp::Lt,
                    50,
                    1,
                    100,
                )
                .unwrap();
                let mut p = Pipeline::new(vec![sel, join], fact.rows()).unwrap();
                p.reorder(order).unwrap();
                p
            };
            let mut static_cpu = SimCpu::new(small_cache_cpu());
            let bad = build(&[1, 0])
                .run_range(&mut static_cpu, 0, n)
                .counters
                .cycles;
            let mut pipeline = build(&[1, 0]);
            let mut cpu = SimCpu::new(small_cache_cpu());
            let prog = run_progressive_pipeline(
                &mut pipeline,
                &[1, 0],
                pipeline_vectors(),
                &mut cpu,
                &config(),
            )
            .unwrap();
            assert_eq!(prog.final_peo, vec![0, 1], "{:?}", prog.switches);
            assert!(
                prog.cycles < bad,
                "progressive {} !< static bad order {bad}",
                prog.cycles
            );
        }

        /// Cheap selection + co-clustered join: the join belongs in front
        /// (Figure 14's sorted side). Start selection-first.
        #[test]
        fn converges_to_join_first_for_coclustered_join() {
            let n = 1 << 17;
            let (fact, dim) = tables(n);
            let build = || {
                let sel = FilterOp::select(&fact, "val", CompareOp::Lt, 50, 0, 50).unwrap();
                let join = FilterOp::join_filter(
                    &fact,
                    "fk_seq",
                    &dim,
                    "payload",
                    CompareOp::Lt,
                    50,
                    1,
                    100,
                )
                .unwrap();
                Pipeline::new(vec![sel, join], fact.rows()).unwrap()
            };
            let mut pipeline = build();
            let mut cpu = SimCpu::new(small_cache_cpu());
            let prog = run_progressive_pipeline(
                &mut pipeline,
                &[0, 1],
                pipeline_vectors(),
                &mut cpu,
                &config(),
            )
            .unwrap();
            assert_eq!(prog.final_peo, vec![1, 0], "{:?}", prog.switches);
        }

        /// Reordering mid-run must not change the query result, including
        /// the aggregate.
        #[test]
        fn progressive_pipeline_preserves_results() {
            let n = 1 << 16;
            let (fact, dim) = tables(n);
            let build = || {
                let sel = FilterOp::select(&fact, "val", CompareOp::Lt, 50, 0, 50).unwrap();
                let join = FilterOp::join_filter(
                    &fact,
                    "fk_rand",
                    &dim,
                    "payload",
                    CompareOp::Lt,
                    50,
                    1,
                    100,
                )
                .unwrap();
                Pipeline::new(vec![sel, join], fact.rows())
                    .unwrap()
                    .with_aggregate(&fact, "val")
                    .unwrap()
            };
            let static_pipeline = build();
            let mut cpu1 = SimCpu::new(small_cache_cpu());
            let expect = static_pipeline.run_range(&mut cpu1, 0, n);
            let mut pipeline = build();
            let mut cpu2 = SimCpu::new(small_cache_cpu());
            let prog = run_progressive_pipeline(
                &mut pipeline,
                &[1, 0],
                pipeline_vectors(),
                &mut cpu2,
                &config(),
            )
            .unwrap();
            assert_eq!(prog.qualified, expect.qualified);
            assert_eq!(prog.sum, expect.sum);
            assert!(prog.sum > 0);
        }

        /// A good initial operator order stays put.
        #[test]
        fn good_pipeline_order_is_left_alone() {
            let n = 1 << 16;
            let (fact, dim) = tables(n);
            let sel = FilterOp::select(&fact, "val", CompareOp::Lt, 50, 0, 50).unwrap();
            let join =
                FilterOp::join_filter(&fact, "fk_rand", &dim, "payload", CompareOp::Lt, 50, 1, 100)
                    .unwrap();
            let mut pipeline = Pipeline::new(vec![sel, join], fact.rows()).unwrap();
            let mut cpu = SimCpu::new(small_cache_cpu());
            let prog = run_progressive_pipeline(
                &mut pipeline,
                &[0, 1],
                pipeline_vectors(),
                &mut cpu,
                &config(),
            )
            .unwrap();
            assert_eq!(prog.final_peo, vec![0, 1], "{:?}", prog.switches);
        }
    }

    #[test]
    fn exploration_fires_only_when_stalled() {
        let t = skewed_table(16_384);
        let plan = skewed_plan();
        // A converging run never explores.
        let mut cpu = SimCpu::new(CpuConfig::ivy_bridge());
        let converging = run_progressive(
            &t,
            &plan,
            &[2, 1, 0],
            VectorConfig {
                vector_tuples: 512,
                max_vectors: None,
            },
            &mut cpu,
            &ProgressiveConfig {
                reop_interval: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(converging.switches.iter().all(|s| !s.exploratory));

        // Force every trial to "regress" (negative tolerance): all
        // proposals are rejected, the run stalls, and exploration must
        // kick in.
        let mut cpu = SimCpu::new(CpuConfig::ivy_bridge());
        let stalled = run_progressive(
            &t,
            &plan,
            &[2, 1, 0],
            VectorConfig {
                vector_tuples: 512,
                max_vectors: None,
            },
            &mut cpu,
            &ProgressiveConfig {
                reop_interval: 1,
                regression_tolerance: -1.0,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(stalled.switches.iter().any(|s| s.reverted));
        assert!(
            stalled.switches.iter().any(|s| s.exploratory),
            "{:?}",
            stalled.switches
        );
    }
}
