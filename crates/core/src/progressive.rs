//! The progressive optimization loop (Section 4.4, Figure 10).
//!
//! Execution proceeds vector-at-a-time. After every *ReopInt* vectors the
//! optimizer:
//!
//! 1. takes the performance-counter sample of the most recent vector
//!    (non-invasive — the counters were running anyway);
//! 2. infers per-predicate selectivities with the multi-start Nelder–Mead
//!    estimator of Section 4.2/4.3;
//! 3. reorders the PEO ascending by estimated selectivity and, if that
//!    differs from the running order, switches ("a JIT-compiled system
//!    would compile a new binary; a vectorized system chains pre-compiled
//!    primitives in the new order");
//! 4. executes one **trial vector** under the new order and compares the
//!    counters against the pre-switch vector: improvements keep the new
//!    order, deteriorations reinstate the old one.
//!
//! Skew is caught by the periodic re-sampling itself; correlation can
//! additionally be probed by occasional exploratory orders (Section 4.5),
//! enabled via [`ProgressiveConfig::explore_correlation`].

use popt_cost::markov::ChainSpec;
use popt_cpu::pmu::CounterDelta;
use popt_cpu::SimCpu;
use popt_solver::{estimate_selectivities, EstimatorConfig};
use popt_storage::Table;

use crate::error::EngineError;
use crate::exec::scan::{CompiledSelection, VectorStats};
use crate::plan::{order_by_selectivity, Peo, SelectionPlan};

/// Configuration of the progressive optimizer.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressiveConfig {
    /// Vectors between optimization attempts (the paper evaluates 10, 75
    /// and 200; short intervals react fastest, Section 5.3–5.4).
    pub reop_interval: usize,
    /// Selectivity estimator settings.
    pub estimator: EstimatorConfig,
    /// Reinstate the previous PEO if the trial vector deteriorates.
    pub revert_on_regression: bool,
    /// Relative cycles-per-tuple slack before a trial counts as a
    /// regression.
    pub regression_tolerance: f64,
    /// Periodically execute one vector under an exploratory PEO to detect
    /// correlation effects that the current order cannot reveal
    /// (Section 4.5).
    pub explore_correlation: bool,
    /// Cycles charged per estimator objective evaluation, accounting for
    /// the optimization time the paper discusses in Section 5.7.
    pub cycles_per_estimator_eval: u64,
    /// Optimization rounds for which a *reverted* order is remembered and
    /// not re-proposed. Correlated predicates (e.g. two bounds on one
    /// column, Section 4.5) make the independence-based reorder disagree
    /// with measured reality; without this memory the optimizer would pay
    /// a failed trial vector at every interval.
    pub rejection_ttl: usize,
}

impl Default for ProgressiveConfig {
    fn default() -> Self {
        Self {
            reop_interval: 10,
            estimator: EstimatorConfig::default(),
            revert_on_regression: true,
            regression_tolerance: 0.02,
            explore_correlation: true,
            cycles_per_estimator_eval: 60,
            rejection_ttl: 2,
        }
    }
}

/// One PEO switch performed during execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchEvent {
    /// Vector index at which the switch took effect.
    pub vector: usize,
    /// Order before the switch.
    pub from: Peo,
    /// Order after the switch.
    pub to: Peo,
    /// Whether the trial vector regressed and the switch was undone.
    pub reverted: bool,
    /// Whether this was an exploratory (correlation-probing) switch
    /// rather than an estimator-driven one.
    pub exploratory: bool,
}

/// Outcome of a full (baseline or progressive) query execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressiveReport {
    /// Qualifying tuples.
    pub qualified: u64,
    /// Aggregate sum.
    pub sum: i64,
    /// Total simulated cycles, including optimizer time.
    pub cycles: u64,
    /// Total simulated milliseconds.
    pub millis: f64,
    /// Vectors executed.
    pub vectors: usize,
    /// PEO switches, in order.
    pub switches: Vec<SwitchEvent>,
    /// Estimator invocations.
    pub estimates: usize,
    /// Cycles attributed to the optimizer itself.
    pub optimizer_cycles: u64,
    /// The order in effect when execution finished.
    pub final_peo: Peo,
    /// Total counters across the run.
    pub counters: CounterDelta,
    /// Per-vector cycle counts (for convergence plots).
    pub per_vector_cycles: Vec<u64>,
}

impl ProgressiveReport {
    // Private assembly helper for the two runners; the argument list is
    // the report's field list, so grouping them into a carrier struct
    // would just duplicate the type.
    #[allow(clippy::too_many_arguments)]
    fn from_run(
        accumulated: VectorStats,
        vectors: usize,
        switches: Vec<SwitchEvent>,
        estimates: usize,
        optimizer_cycles: u64,
        final_peo: Peo,
        per_vector_cycles: Vec<u64>,
        frequency_ghz: f64,
    ) -> Self {
        let cycles = accumulated.counters.cycles + optimizer_cycles;
        Self {
            qualified: accumulated.qualified,
            sum: accumulated.sum,
            cycles,
            millis: cycles as f64 / (frequency_ghz * 1e6),
            vectors,
            switches,
            estimates,
            optimizer_cycles,
            final_peo,
            counters: accumulated.counters,
            per_vector_cycles,
        }
    }
}

/// Vectorization parameters of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VectorConfig {
    /// Tuples per vector.
    pub vector_tuples: usize,
    /// Cap on the number of vectors (`None` = scan the whole table).
    pub max_vectors: Option<usize>,
}

impl VectorConfig {
    /// Validate and compute the vector ranges for a table of `rows`.
    pub fn ranges(&self, rows: usize) -> Result<Vec<(usize, usize)>, EngineError> {
        if self.vector_tuples == 0 {
            return Err(EngineError::InvalidVectorConfig("vector_tuples = 0".into()));
        }
        let mut out = Vec::new();
        let mut start = 0;
        while start < rows {
            let end = (start + self.vector_tuples).min(rows);
            out.push((start, end));
            start = end;
            if let Some(max) = self.max_vectors {
                if out.len() >= max {
                    break;
                }
            }
        }
        Ok(out)
    }
}

/// Execute `plan` with a fixed PEO — the paper's "common execution
/// pattern" baseline.
pub fn run_baseline(
    table: &Table,
    plan: &SelectionPlan,
    peo: &[usize],
    vectors: VectorConfig,
    cpu: &mut SimCpu,
) -> Result<ProgressiveReport, EngineError> {
    let compiled = CompiledSelection::compile(table, plan, peo)?;
    let ranges = vectors.ranges(table.rows())?;
    let mut total = VectorStats::zero();
    let mut per_vector = Vec::with_capacity(ranges.len());
    for &(start, end) in &ranges {
        let stats = compiled.run_range(cpu, start, end);
        per_vector.push(stats.counters.cycles);
        total.accumulate(&stats);
    }
    let freq = cpu.config().timing.frequency_ghz;
    Ok(ProgressiveReport::from_run(
        total,
        ranges.len(),
        Vec::new(),
        0,
        0,
        peo.to_vec(),
        per_vector,
        freq,
    ))
}

/// Execute `plan` starting from `initial_peo` with progressive
/// optimization enabled.
pub fn run_progressive(
    table: &Table,
    plan: &SelectionPlan,
    initial_peo: &[usize],
    vectors: VectorConfig,
    cpu: &mut SimCpu,
    config: &ProgressiveConfig,
) -> Result<ProgressiveReport, EngineError> {
    if config.reop_interval == 0 {
        return Err(EngineError::InvalidVectorConfig("reop_interval = 0".into()));
    }
    let mut compiled = CompiledSelection::compile(table, plan, initial_peo)?;
    let ranges = vectors.ranges(table.rows())?;
    let chain = ChainSpec {
        states: cpu.config().predictor.states,
        not_taken_states: cpu.config().predictor.not_taken_states,
    };
    let line_bytes = cpu.config().line_bytes() as u32;

    let mut total = VectorStats::zero();
    let mut per_vector = Vec::with_capacity(ranges.len());
    let mut switches: Vec<SwitchEvent> = Vec::new();
    let mut estimates = 0usize;
    let mut optimizer_cycles = 0u64;
    // Pending trial: (pre-switch cycles-per-tuple, index into `switches`).
    let mut pending_trial: Option<(f64, usize)> = None;
    let mut reopt_count = 0usize;
    // Reopt round of the most recent *accepted* switch (for stall
    // detection).
    let mut last_accept_reopt = 0usize;
    // Recently reverted orders: (order, reopt round it was rejected at).
    let mut rejected: Vec<(Peo, usize)> = Vec::new();

    for (v_idx, &(start, end)) in ranges.iter().enumerate() {
        let stats = compiled.run_range(cpu, start, end);
        per_vector.push(stats.counters.cycles);

        // Resolve an outstanding trial against this vector's counters.
        if let Some((prev_cpt, switch_idx)) = pending_trial.take() {
            let cpt = stats.cycles_per_tuple();
            if config.revert_on_regression && cpt > prev_cpt * (1.0 + config.regression_tolerance) {
                let old = switches[switch_idx].from.clone();
                rejected.push((compiled.peo().to_vec(), reopt_count));
                compiled = CompiledSelection::compile(table, plan, &old)?;
                switches[switch_idx].reverted = true;
            } else {
                last_accept_reopt = reopt_count;
            }
        }

        total.accumulate(&stats);

        // Optimization point?
        let at_interval = (v_idx + 1) % config.reop_interval == 0;
        let more_vectors_remain = v_idx + 1 < ranges.len();
        if !(at_interval && more_vectors_remain) {
            continue;
        }
        reopt_count += 1;

        // Explore a rotated order when optimization has stalled
        // (Section 4.5: "periodically execute different PEOs"). The tail
        // predicate is the one the sample says least about — it sees the
        // fewest tuples — so rotating it to the front gives it full
        // exposure and escapes local optima of the under-determined
        // estimation. Runs that keep converging never pay for this.
        // "Stalled" requires both no recent accepted switch AND an active
        // disagreement (a recently rejected proposal): a converged run
        // where the estimator proposes nothing never pays for exploration.
        let stalled = reopt_count >= last_accept_reopt + 3 && !rejected.is_empty();
        if config.explore_correlation && stalled && reopt_count % 2 == 0 {
            let mut explored = compiled.peo().to_vec();
            explored.rotate_right(1);
            if explored != compiled.peo() {
                switches.push(SwitchEvent {
                    vector: v_idx + 1,
                    from: compiled.peo().to_vec(),
                    to: explored.clone(),
                    reverted: false,
                    exploratory: true,
                });
                pending_trial = Some((stats.cycles_per_tuple(), switches.len() - 1));
                compiled = CompiledSelection::compile(table, plan, &explored)?;
            }
            continue;
        }

        // Estimate selectivities from the most recent vector's sample.
        let sampled = stats.sampled_counters();
        let geom = compiled.plan_geometry(sampled.n_input, chain, line_bytes);
        let estimate = estimate_selectivities(&geom, &sampled, &config.estimator);
        estimates += 1;
        optimizer_cycles += estimate.evaluations as u64 * config.cycles_per_estimator_eval;

        let new_peo = order_by_selectivity(compiled.peo(), &estimate.selectivities);
        // Skip orders a recent trial already rejected (correlation guard).
        rejected.retain(|(_, at)| reopt_count - at <= config.rejection_ttl);
        if rejected.iter().any(|(peo, _)| peo == &new_peo) {
            continue;
        }
        if new_peo != compiled.peo() {
            switches.push(SwitchEvent {
                vector: v_idx + 1,
                from: compiled.peo().to_vec(),
                to: new_peo.clone(),
                reverted: false,
                exploratory: false,
            });
            pending_trial = Some((stats.cycles_per_tuple(), switches.len() - 1));
            compiled = CompiledSelection::compile(table, plan, &new_peo)?;
        }
    }

    let freq = cpu.config().timing.frequency_ghz;
    Ok(ProgressiveReport::from_run(
        total,
        ranges.len(),
        switches,
        estimates,
        optimizer_cycles,
        compiled.peo().to_vec(),
        per_vector,
        freq,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{CompareOp, Predicate};
    use popt_cpu::CpuConfig;
    use popt_storage::{AddressSpace, ColumnData, Table};

    /// Table where predicate selectivities are very different: `lo` passes
    /// 5%, `mid` 50%, `hi` 95% — the optimal PEO is [lo, mid, hi].
    fn skewed_table(n: usize) -> Table {
        let mut space = AddressSpace::new();
        let mut t = Table::new("t");
        let pseudo = |i: usize, salt: u64| -> i32 {
            let x = (i as u64).wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17) ^ salt;
            ((x >> 33) % 100) as i32
        };
        t.add_column(
            "lo",
            ColumnData::I32((0..n).map(|i| pseudo(i, 1)).collect()),
            &mut space,
        );
        t.add_column(
            "mid",
            ColumnData::I32((0..n).map(|i| pseudo(i, 2)).collect()),
            &mut space,
        );
        t.add_column(
            "hi",
            ColumnData::I32((0..n).map(|i| pseudo(i, 3)).collect()),
            &mut space,
        );
        t
    }

    fn skewed_plan() -> SelectionPlan {
        SelectionPlan::new(
            vec![
                Predicate::new("lo", CompareOp::Lt, 5),
                Predicate::new("mid", CompareOp::Lt, 50),
                Predicate::new("hi", CompareOp::Lt, 95),
            ],
            vec![],
        )
        .unwrap()
    }

    fn vectors() -> VectorConfig {
        VectorConfig {
            vector_tuples: 2048,
            max_vectors: None,
        }
    }

    #[test]
    fn baseline_and_progressive_agree_on_results() {
        let t = skewed_table(16_384);
        let plan = skewed_plan();
        let worst = vec![2usize, 1, 0];
        let mut cpu1 = SimCpu::new(CpuConfig::ivy_bridge());
        let base = run_baseline(&t, &plan, &worst, vectors(), &mut cpu1).unwrap();
        let mut cpu2 = SimCpu::new(CpuConfig::ivy_bridge());
        let prog = run_progressive(
            &t,
            &plan,
            &worst,
            vectors(),
            &mut cpu2,
            &ProgressiveConfig {
                reop_interval: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(base.qualified, prog.qualified);
        assert_eq!(base.sum, prog.sum);
    }

    #[test]
    fn progressive_converges_to_ascending_selectivity_order() {
        let t = skewed_table(16_384);
        let plan = skewed_plan();
        let worst = vec![2usize, 1, 0]; // hi, mid, lo: descending selectivity
        let mut cpu = SimCpu::new(CpuConfig::ivy_bridge());
        let prog = run_progressive(
            &t,
            &plan,
            &worst,
            vectors(),
            &mut cpu,
            &ProgressiveConfig {
                reop_interval: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(
            prog.final_peo,
            vec![0, 1, 2],
            "switches: {:?}",
            prog.switches
        );
        assert!(!prog.switches.is_empty());
        assert!(prog.estimates > 0);
    }

    #[test]
    fn progressive_beats_bad_baseline() {
        let t = skewed_table(16_384);
        let plan = skewed_plan();
        let worst = vec![2usize, 1, 0];
        let mut cpu1 = SimCpu::new(CpuConfig::ivy_bridge());
        let base = run_baseline(&t, &plan, &worst, vectors(), &mut cpu1).unwrap();
        let mut cpu2 = SimCpu::new(CpuConfig::ivy_bridge());
        let prog = run_progressive(
            &t,
            &plan,
            &worst,
            vectors(),
            &mut cpu2,
            &ProgressiveConfig {
                reop_interval: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            prog.cycles < base.cycles,
            "progressive {} !< baseline {}",
            prog.cycles,
            base.cycles
        );
    }

    #[test]
    fn good_initial_order_is_left_alone() {
        let t = skewed_table(16_384);
        let plan = skewed_plan();
        let best = vec![0usize, 1, 2];
        let mut cpu = SimCpu::new(CpuConfig::ivy_bridge());
        let prog = run_progressive(
            &t,
            &plan,
            &best,
            vectors(),
            &mut cpu,
            &ProgressiveConfig {
                reop_interval: 2,
                ..Default::default()
            },
        )
        .unwrap();
        // No net change of order; sporadic trial switches must revert.
        assert_eq!(prog.final_peo, best);
    }

    #[test]
    fn zero_reop_interval_is_rejected() {
        let t = skewed_table(1024);
        let plan = skewed_plan();
        let mut cpu = SimCpu::new(CpuConfig::tiny_test());
        let err = run_progressive(
            &t,
            &plan,
            &[0, 1, 2],
            vectors(),
            &mut cpu,
            &ProgressiveConfig {
                reop_interval: 0,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::InvalidVectorConfig(_)));
    }

    #[test]
    fn vector_ranges_cover_table_exactly() {
        let v = VectorConfig {
            vector_tuples: 1000,
            max_vectors: None,
        };
        let ranges = v.ranges(2500).unwrap();
        assert_eq!(ranges, vec![(0, 1000), (1000, 2000), (2000, 2500)]);
        let capped = VectorConfig {
            vector_tuples: 1000,
            max_vectors: Some(2),
        };
        assert_eq!(capped.ranges(2500).unwrap().len(), 2);
    }

    #[test]
    fn optimizer_cycles_are_accounted() {
        let t = skewed_table(8192);
        let plan = skewed_plan();
        let mut cpu = SimCpu::new(CpuConfig::ivy_bridge());
        let prog = run_progressive(
            &t,
            &plan,
            &[2, 1, 0],
            vectors(),
            &mut cpu,
            &ProgressiveConfig {
                reop_interval: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(prog.optimizer_cycles > 0);
        assert_eq!(prog.cycles, prog.counters.cycles + prog.optimizer_cycles);
    }

    #[test]
    fn exploration_fires_only_when_stalled() {
        let t = skewed_table(16_384);
        let plan = skewed_plan();
        // A converging run never explores.
        let mut cpu = SimCpu::new(CpuConfig::ivy_bridge());
        let converging = run_progressive(
            &t,
            &plan,
            &[2, 1, 0],
            VectorConfig {
                vector_tuples: 512,
                max_vectors: None,
            },
            &mut cpu,
            &ProgressiveConfig {
                reop_interval: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(converging.switches.iter().all(|s| !s.exploratory));

        // Force every trial to "regress" (negative tolerance): all
        // proposals are rejected, the run stalls, and exploration must
        // kick in.
        let mut cpu = SimCpu::new(CpuConfig::ivy_bridge());
        let stalled = run_progressive(
            &t,
            &plan,
            &[2, 1, 0],
            VectorConfig {
                vector_tuples: 512,
                max_vectors: None,
            },
            &mut cpu,
            &ProgressiveConfig {
                reop_interval: 1,
                regression_tolerance: -1.0,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(stalled.switches.iter().any(|s| s.reverted));
        assert!(
            stalled.switches.iter().any(|s| s.exploratory),
            "{:?}",
            stalled.switches
        );
    }
}
