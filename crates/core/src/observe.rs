//! Execution-attached observers: the bundle of non-invasive sinks a run
//! can carry (trace, per-stage cycle profiler, model-drift observatory).
//!
//! Every observer hangs *outside* the simulated-cost path: attaching any
//! combination burns zero simulated cycles and never perturbs the run it
//! observes. The profiler additionally obeys a conservation law — the
//! cycles it attributes to stage/optimizer/idle lanes sum bit-exactly to
//! the wall cycles the run reports (pinned by `tests/proptest_obs.rs`).
//!
//! [`ExecObservers`] is the carrier every `*_observed` entry point takes
//! ([`run_progressive_target_observed`], [`run_parallel_target_observed`]
//! and friends); the plain entry points pass [`ExecObservers::none`].
//!
//! [`run_progressive_target_observed`]: crate::progressive::run_progressive_target_observed
//! [`run_parallel_target_observed`]: crate::parallel::run_parallel_target_observed

use std::sync::Arc;

use popt_cost::cycles::{plan_cycles, CycleParams};
use popt_cost::estimate::{estimate_counters, PlanGeometry};
use popt_obs::{apportion, DriftObservatory, Profiler, Tracer};
use popt_solver::SampledCounters;

use crate::exec::scan::VectorStats;

/// The observers a run carries. All optional, all non-invasive; the
/// default carries none and is bit-identical to not observing at all.
#[derive(Clone, Default)]
pub struct ExecObservers {
    /// Decision/event tracing: the tracer plus the query id to stamp
    /// events with (serial runs ignore this field — the serial loop has
    /// no decision points distinct from its report).
    pub trace: Option<(Arc<Tracer>, usize)>,
    /// Per-stage cycle profiler (stage/optimizer/idle lanes).
    pub profiler: Option<Arc<Profiler>>,
    /// Model-drift observatory (predicted-vs-observed residuals).
    pub drift: Option<Arc<DriftObservatory>>,
}

impl ExecObservers {
    /// No observers — the plain entry points' carrier.
    pub fn none() -> Self {
        Self::default()
    }

    /// Attach a tracer stamping events with `query`.
    pub fn with_trace(mut self, tracer: Arc<Tracer>, query: usize) -> Self {
        self.trace = Some((tracer, query));
        self
    }

    /// Attach a per-stage cycle profiler.
    pub fn with_profiler(mut self, profiler: Arc<Profiler>) -> Self {
        self.profiler = Some(profiler);
        self
    }

    /// Attach a model-drift observatory.
    pub fn with_drift(mut self, drift: Arc<DriftObservatory>) -> Self {
        self.drift = Some(drift);
        self
    }
}

/// Split one morsel's measured cycles across the stages of the order it
/// ran under, for profiler attribution.
///
/// The per-stage weight is the stage's intrinsic per-eval cost
/// (`plan_weights`, plan-indexed) times the fraction of the morsel's
/// tuples that *reach* the stage under the morsel's own geometric
/// per-stage pass rate `ŝ = (qualified / tuples)^(1/n)` — a morsel-local
/// estimate needing no optimizer state, so attribution is a pure function
/// of the morsel's measurements. [`apportion`] quantizes the weights so
/// the parts sum bit-exactly to the morsel's cycles.
pub(crate) fn morsel_stage_parts(
    order: &[usize],
    plan_weights: &[f64],
    stats: &VectorStats,
) -> Vec<(usize, u64)> {
    let n = order.len().max(1);
    let tuples = (stats.tuples.max(1)) as f64;
    let pass = (stats.qualified as f64 / tuples)
        .clamp(0.0, 1.0)
        .powf(1.0 / n as f64);
    let mut weights = Vec::with_capacity(order.len());
    let mut reaching = 1.0f64;
    for &j in order {
        weights.push(plan_weights.get(j).copied().unwrap_or(1.0).max(0.0) * reaching);
        reaching *= pass;
    }
    let parts = apportion(stats.counters.cycles, &weights);
    order.iter().copied().zip(parts).collect()
}

/// Record one reopt round's predicted-vs-observed residuals into the
/// drift observatory: the counter model's branch/L3 predictions at the
/// fitted survivors against the sampled window, and the analytic
/// cycles-per-tuple against the measured one. `stage_key` is the
/// literal-free key of the front stage of the order the sample ran under.
pub(crate) fn record_fit_drift(
    drift: &DriftObservatory,
    stage_key: u64,
    geom: &PlanGeometry,
    sampled: &SampledCounters,
    survivors: &[f64],
    observed_cpt: f64,
) {
    let est = estimate_counters(geom, survivors);
    drift.record("bnt", stage_key, est.bnt, sampled.bnt as f64);
    drift.record(
        "mp",
        stage_key,
        est.mp_taken + est.mp_not_taken,
        (sampled.mp_taken + sampled.mp_not_taken) as f64,
    );
    drift.record("l3", stage_key, est.l3_accesses, sampled.l3_accesses as f64);
    if sampled.n_input > 0 {
        // The analytic model prices with the default CycleParams — the
        // same constants `propose_order` ranks with — so the raw residual
        // carries any constant bias vs the simulated timing; the
        // observatory's calibrated view divides it out.
        let pred_cpt =
            plan_cycles(geom, survivors, &CycleParams::default()) / sampled.n_input as f64;
        drift.record("cpt", stage_key, pred_cpt, observed_cpt);
    }
}

/// The literal-free key of the front stage of `order`, falling back to
/// the plan index when the target publishes no keys.
pub(crate) fn front_stage_key(stage_keys: &[u64], order: &[usize]) -> u64 {
    let front = order.first().copied().unwrap_or(0);
    stage_keys.get(front).copied().unwrap_or(front as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use popt_cpu::pmu::{CounterDelta, Counters};

    fn stats(tuples: u64, qualified: u64, cycles: u64) -> VectorStats {
        VectorStats {
            tuples,
            qualified,
            sum: 0,
            counters: CounterDelta(Counters {
                cycles,
                ..Default::default()
            }),
        }
    }

    #[test]
    fn morsel_parts_conserve_and_weight_by_reach() {
        let parts = morsel_stage_parts(&[2, 0, 1], &[1.0, 1.0, 1.0], &stats(1000, 10, 9999));
        assert_eq!(parts.iter().map(|&(_, c)| c).sum::<u64>(), 9999);
        assert_eq!(
            parts.iter().map(|&(j, _)| j).collect::<Vec<_>>(),
            vec![2, 0, 1]
        );
        // Equal intrinsic weights + low pass rate: front stage sees every
        // tuple, later stages see geometrically fewer.
        assert!(parts[0].1 > parts[1].1);
        assert!(parts[1].1 > parts[2].1);
    }

    #[test]
    fn morsel_parts_handle_degenerate_shapes() {
        // Empty order: nothing to attribute.
        assert!(morsel_stage_parts(&[], &[], &stats(0, 0, 100)).is_empty());
        // Missing weights fall back to uniform reach-weighting.
        let parts = morsel_stage_parts(&[0, 1], &[], &stats(100, 100, 7));
        assert_eq!(parts.iter().map(|&(_, c)| c).sum::<u64>(), 7);
    }

    #[test]
    fn front_key_prefers_published_keys() {
        assert_eq!(front_stage_key(&[10, 20, 30], &[1, 0, 2]), 20);
        assert_eq!(front_stage_key(&[], &[1, 0, 2]), 1);
        assert_eq!(front_stage_key(&[], &[]), 0);
    }
}
