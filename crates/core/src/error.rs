//! Engine error type.

use std::fmt;

/// Errors surfaced by plan compilation and query execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A predicate or aggregate references a column the table lacks.
    UnknownColumn(String),
    /// A column has a type the vectorized scan cannot execute (the hot
    /// loop specializes on 32-bit columns).
    UnsupportedColumnType(String),
    /// The plan contains no predicates.
    EmptyPlan,
    /// A predicate evaluation order is not a permutation of the plan's
    /// predicates.
    InvalidPeo {
        /// Number of predicates in the plan.
        expected: usize,
        /// The offending order.
        got: Vec<usize>,
    },
    /// A vectorization parameter is zero or otherwise unusable.
    InvalidVectorConfig(String),
    /// A predicate expression has a shape the compiled stage form cannot
    /// express (e.g. a disjunction of non-constant terms, or a constant-
    /// false filter that would qualify nothing).
    UnsupportedExpr(String),
    /// A foreign-key column holds a key outside the dimension table's row
    /// range (negative or dangling), detected at join-filter construction.
    ForeignKeyOutOfRange {
        /// The offending foreign-key column.
        column: String,
        /// The first out-of-range key value.
        key: i64,
        /// Rows in the probed dimension table.
        dim_rows: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownColumn(name) => write!(f, "unknown column {name:?}"),
            EngineError::UnsupportedColumnType(name) => {
                write!(
                    f,
                    "column {name:?} has an unsupported type for vectorized scans"
                )
            }
            EngineError::EmptyPlan => write!(f, "plan has no predicates"),
            EngineError::InvalidPeo { expected, got } => {
                write!(f, "PEO {got:?} is not a permutation of 0..{expected}")
            }
            EngineError::InvalidVectorConfig(msg) => write!(f, "invalid vector config: {msg}"),
            EngineError::UnsupportedExpr(msg) => {
                write!(f, "unsupported predicate expression: {msg}")
            }
            EngineError::ForeignKeyOutOfRange {
                column,
                key,
                dim_rows,
            } => {
                write!(
                    f,
                    "foreign key column {column:?} holds key {key} outside the \
                     dimension's 0..{dim_rows} row range"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = EngineError::UnknownColumn("l_foo".into());
        assert!(e.to_string().contains("l_foo"));
        let e = EngineError::InvalidPeo {
            expected: 3,
            got: vec![0, 0, 2],
        };
        assert!(e.to_string().contains("0..3"));
    }
}
