//! Logical query plans: the typed entry door of the query frontend.
//!
//! Every query — figure, test, workload generator, serving spec — is
//! built here first: a [`PlanBuilder`] assembles a [`LogicalPlan`] of
//! typed nodes (scan, filter over an arbitrary boolean [`Expr`],
//! foreign-key join, aggregate), the static passes in
//! [`crate::plan::passes`] rewrite it, and lowering
//! ([`crate::exec::program::CompiledProgram::from_plan`]) emits the flat
//! compiled stage form the progressive runtime reorders at execution
//! time. (Hand-chained `Pipeline` construction survives only as hidden
//! test support — see `crate::exec::pipeline`.)
//!
//! Expressions are general trees; [`Expr::normalize`] rewrites them into
//! the canonical `column OP literal` conjunction the short-circuit loop
//! executes (constant folding, `NOT` pushed through comparisons and De
//! Morgan, literal-on-left swaps, single-column linear rearrangement).
//! Shapes that survive normalization without reaching that form — e.g. a
//! disjunction of two columns — are rejected at lowering with
//! [`crate::error::EngineError::UnsupportedExpr`].

use popt_storage::Table;

use crate::predicate::CompareOp;

/// A predicate expression tree over one table's columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A column reference.
    Col(String),
    /// An integer literal.
    Lit(i64),
    /// A boolean constant (the result of folding a constant comparison).
    Bool(bool),
    /// A comparison between two sub-expressions.
    Cmp(Box<Expr>, CompareOp, Box<Expr>),
    /// Logical conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// Integer addition.
    Add(Box<Expr>, Box<Expr>),
    /// Integer subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Integer multiplication.
    Mul(Box<Expr>, Box<Expr>),
}

impl From<i64> for Expr {
    fn from(v: i64) -> Self {
        Expr::Lit(v)
    }
}

impl From<&str> for Expr {
    fn from(name: &str) -> Self {
        Expr::Col(name.to_string())
    }
}

impl Expr {
    /// A column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Col(name.into())
    }

    /// An integer literal.
    pub fn lit(v: i64) -> Expr {
        Expr::Lit(v)
    }

    /// `self < rhs`.
    pub fn less_than(self, rhs: impl Into<Expr>) -> Expr {
        Expr::Cmp(Box::new(self), CompareOp::Lt, Box::new(rhs.into()))
    }

    /// `self <= rhs`.
    pub fn at_most(self, rhs: impl Into<Expr>) -> Expr {
        Expr::Cmp(Box::new(self), CompareOp::Le, Box::new(rhs.into()))
    }

    /// `self > rhs`.
    pub fn greater_than(self, rhs: impl Into<Expr>) -> Expr {
        Expr::Cmp(Box::new(self), CompareOp::Gt, Box::new(rhs.into()))
    }

    /// `self >= rhs`.
    pub fn at_least(self, rhs: impl Into<Expr>) -> Expr {
        Expr::Cmp(Box::new(self), CompareOp::Ge, Box::new(rhs.into()))
    }

    /// `self == rhs`.
    pub fn equal_to(self, rhs: impl Into<Expr>) -> Expr {
        Expr::Cmp(Box::new(self), CompareOp::Eq, Box::new(rhs.into()))
    }

    /// `self != rhs`.
    pub fn not_equal_to(self, rhs: impl Into<Expr>) -> Expr {
        Expr::Cmp(Box::new(self), CompareOp::Ne, Box::new(rhs.into()))
    }

    /// `self AND rhs`.
    pub fn and(self, rhs: impl Into<Expr>) -> Expr {
        Expr::And(Box::new(self), Box::new(rhs.into()))
    }

    /// `self OR rhs`.
    pub fn or(self, rhs: impl Into<Expr>) -> Expr {
        Expr::Or(Box::new(self), Box::new(rhs.into()))
    }

    /// `NOT self`.
    pub fn negate(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// `self + rhs`.
    pub fn plus(self, rhs: impl Into<Expr>) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs.into()))
    }

    /// `self - rhs`.
    pub fn minus(self, rhs: impl Into<Expr>) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs.into()))
    }

    /// `self * rhs`.
    pub fn times(self, rhs: impl Into<Expr>) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs.into()))
    }

    /// Rewrite the expression into canonical form:
    ///
    /// * constant arithmetic and constant comparisons fold to literals /
    ///   booleans;
    /// * `NOT` is pushed through comparisons ([`CompareOp::negated`]) and
    ///   conjunctions/disjunctions (De Morgan), double negation cancels;
    /// * `literal OP column` swaps to `column OP literal`
    ///   ([`CompareOp::swapped`]);
    /// * single-column linear forms rearrange onto the literal side
    ///   (`col + k OP y` → `col OP y − k`, `k − col OP y` →
    ///   `col OP.swapped k − y`), skipped on `i64` overflow;
    /// * `TRUE`/`FALSE` absorb through `AND`/`OR`.
    ///
    /// Normalization is idempotent and preserves the predicate's value on
    /// every tuple; it never errors — shapes it cannot canonicalize are
    /// left intact for lowering to reject.
    pub fn normalize(self) -> Expr {
        match self {
            Expr::Col(_) | Expr::Lit(_) | Expr::Bool(_) => self,
            Expr::Add(a, b) => fold_arith(a.normalize(), b.normalize(), Expr::Add, |x, y| {
                x.checked_add(y)
            }),
            Expr::Sub(a, b) => fold_arith(a.normalize(), b.normalize(), Expr::Sub, |x, y| {
                x.checked_sub(y)
            }),
            Expr::Mul(a, b) => fold_arith(a.normalize(), b.normalize(), Expr::Mul, |x, y| {
                x.checked_mul(y)
            }),
            Expr::Cmp(a, op, b) => normalize_cmp(a.normalize(), op, b.normalize()),
            Expr::And(a, b) => match (a.normalize(), b.normalize()) {
                (Expr::Bool(false), _) | (_, Expr::Bool(false)) => Expr::Bool(false),
                (Expr::Bool(true), e) | (e, Expr::Bool(true)) => e,
                (a, b) => Expr::And(Box::new(a), Box::new(b)),
            },
            Expr::Or(a, b) => match (a.normalize(), b.normalize()) {
                (Expr::Bool(true), _) | (_, Expr::Bool(true)) => Expr::Bool(true),
                (Expr::Bool(false), e) | (e, Expr::Bool(false)) => e,
                (a, b) => Expr::Or(Box::new(a), Box::new(b)),
            },
            Expr::Not(e) => match e.normalize() {
                Expr::Bool(b) => Expr::Bool(!b),
                Expr::Cmp(a, op, b) => Expr::Cmp(a, op.negated(), b),
                Expr::And(a, b) => Expr::Or(
                    Box::new(Expr::Not(a).normalize()),
                    Box::new(Expr::Not(b).normalize()),
                )
                .normalize(),
                Expr::Or(a, b) => Expr::And(
                    Box::new(Expr::Not(a).normalize()),
                    Box::new(Expr::Not(b).normalize()),
                )
                .normalize(),
                Expr::Not(inner) => *inner,
                other => Expr::Not(Box::new(other)),
            },
        }
    }

    /// Flatten a (normalized) conjunction into its conjuncts, in
    /// left-to-right order.
    pub fn conjuncts(self) -> Vec<Expr> {
        match self {
            Expr::And(a, b) => {
                let mut out = a.conjuncts();
                out.extend(b.conjuncts());
                out
            }
            other => vec![other],
        }
    }

    /// The canonical `column OP literal` view of a normalized comparison,
    /// if it has that shape.
    pub fn as_comparison(&self) -> Option<(&str, CompareOp, i64)> {
        match self {
            Expr::Cmp(lhs, op, rhs) => match (lhs.as_ref(), rhs.as_ref()) {
                (Expr::Col(name), Expr::Lit(v)) => Some((name.as_str(), *op, *v)),
                _ => None,
            },
            _ => None,
        }
    }

    /// Column names referenced anywhere in the expression.
    pub fn columns(&self) -> Vec<&str> {
        fn walk<'e>(e: &'e Expr, out: &mut Vec<&'e str>) {
            match e {
                Expr::Col(name) => out.push(name.as_str()),
                Expr::Lit(_) | Expr::Bool(_) => {}
                Expr::Cmp(a, _, b)
                | Expr::And(a, b)
                | Expr::Or(a, b)
                | Expr::Add(a, b)
                | Expr::Sub(a, b)
                | Expr::Mul(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                Expr::Not(a) => walk(a, out),
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }

    /// Human-readable rendering (for errors and plan display).
    pub fn display(&self) -> String {
        match self {
            Expr::Col(name) => name.clone(),
            Expr::Lit(v) => v.to_string(),
            Expr::Bool(b) => b.to_string().to_uppercase(),
            Expr::Cmp(a, op, b) => format!("{} {} {}", a.display(), op.symbol(), b.display()),
            Expr::And(a, b) => format!("({} AND {})", a.display(), b.display()),
            Expr::Or(a, b) => format!("({} OR {})", a.display(), b.display()),
            Expr::Not(a) => format!("NOT ({})", a.display()),
            Expr::Add(a, b) => format!("({} + {})", a.display(), b.display()),
            Expr::Sub(a, b) => format!("({} - {})", a.display(), b.display()),
            Expr::Mul(a, b) => format!("({} * {})", a.display(), b.display()),
        }
    }
}

/// Fold an arithmetic node whose children are already normalized;
/// non-foldable shapes (including `i64` overflow) are rebuilt intact.
fn fold_arith(
    a: Expr,
    b: Expr,
    rebuild: fn(Box<Expr>, Box<Expr>) -> Expr,
    fold: fn(i64, i64) -> Option<i64>,
) -> Expr {
    if let (Expr::Lit(x), Expr::Lit(y)) = (&a, &b) {
        if let Some(v) = fold(*x, *y) {
            return Expr::Lit(v);
        }
    }
    rebuild(Box::new(a), Box::new(b))
}

/// Canonicalize a comparison whose operands are already normalized.
fn normalize_cmp(lhs: Expr, op: CompareOp, rhs: Expr) -> Expr {
    match (lhs, rhs) {
        (Expr::Lit(x), Expr::Lit(y)) => Expr::Bool(op.eval(x, y)),
        // literal OP expr → expr OP.swapped literal (column on the left).
        (Expr::Lit(x), e) => normalize_cmp(e, op.swapped(), Expr::Lit(x)),
        // e + k OP y → e OP y − k (and symmetric); skipped on overflow.
        (Expr::Add(a, b), Expr::Lit(y)) => match (*a, *b) {
            (e, Expr::Lit(k)) | (Expr::Lit(k), e) => match y.checked_sub(k) {
                Some(lit) => normalize_cmp(e, op, Expr::Lit(lit)),
                None => Expr::Cmp(
                    Box::new(Expr::Add(Box::new(e), Box::new(Expr::Lit(k)))),
                    op,
                    Box::new(Expr::Lit(y)),
                ),
            },
            (a, b) => Expr::Cmp(
                Box::new(Expr::Add(Box::new(a), Box::new(b))),
                op,
                Box::new(Expr::Lit(y)),
            ),
        },
        // e − k OP y → e OP y + k; k − e OP y → e OP.swapped k − y.
        (Expr::Sub(a, b), Expr::Lit(y)) => match (*a, *b) {
            (e, Expr::Lit(k)) => match y.checked_add(k) {
                Some(lit) => normalize_cmp(e, op, Expr::Lit(lit)),
                None => Expr::Cmp(
                    Box::new(Expr::Sub(Box::new(e), Box::new(Expr::Lit(k)))),
                    op,
                    Box::new(Expr::Lit(y)),
                ),
            },
            (Expr::Lit(k), e) => match k.checked_sub(y) {
                Some(lit) => normalize_cmp(e, op.swapped(), Expr::Lit(lit)),
                None => Expr::Cmp(
                    Box::new(Expr::Sub(Box::new(Expr::Lit(k)), Box::new(e))),
                    op,
                    Box::new(Expr::Lit(y)),
                ),
            },
            (a, b) => Expr::Cmp(
                Box::new(Expr::Sub(Box::new(a), Box::new(b))),
                op,
                Box::new(Expr::Lit(y)),
            ),
        },
        (lhs, rhs) => Expr::Cmp(Box::new(lhs), op, Box::new(rhs)),
    }
}

/// One logical operator over the scanned fact table.
#[derive(Debug, Clone)]
pub enum LogicalNode<'t> {
    /// Filter the fact stream by a boolean predicate expression over
    /// fact-table columns.
    Filter {
        /// The predicate expression.
        predicate: Expr,
        /// Extra instructions charged per evaluation of each lowered
        /// conjunct (expensive predicates — UDFs, `LIKE`, …).
        extra_instructions: u64,
    },
    /// Foreign-key join filter: probe `dim` through `fk_column` and test
    /// `on` (an expression over the joined row's columns — dimension
    /// conjuncts probe, fact conjuncts are extractable filters).
    Join {
        /// The probed dimension table.
        dim: &'t Table,
        /// The foreign-key column on the fact table.
        fk_column: String,
        /// The join's filtering condition.
        on: Expr,
    },
}

impl LogicalNode<'_> {
    /// Whether this node is a foreign-key join.
    pub fn is_join(&self) -> bool {
        matches!(self, LogicalNode::Join { .. })
    }

    /// Static selectivity prior for cardinality estimation before any
    /// counters exist: a filter keeps half its input, a join probe — a
    /// validated FK hit filtered by its condition — three quarters.
    pub fn selectivity_prior(&self) -> f64 {
        match self {
            LogicalNode::Filter { .. } => 0.5,
            LogicalNode::Join { .. } => 0.75,
        }
    }
}

/// A logical query plan: scan one fact table through a sequence of
/// filter/join nodes, then aggregate. The single source every compiled
/// program is lowered from.
#[derive(Debug, Clone)]
pub struct LogicalPlan<'t> {
    pub(crate) fact: &'t Table,
    pub(crate) nodes: Vec<LogicalNode<'t>>,
    pub(crate) aggregates: Vec<String>,
    pub(crate) projection: Vec<String>,
}

impl<'t> LogicalPlan<'t> {
    /// The scanned fact table.
    pub fn fact(&self) -> &'t Table {
        self.fact
    }

    /// The filter/join nodes, in plan order.
    pub fn nodes(&self) -> &[LogicalNode<'t>] {
        &self.nodes
    }

    /// Aggregate columns summed for qualifying tuples.
    pub fn aggregates(&self) -> &[String] {
        &self.aggregates
    }

    /// Extra columns materialized for qualifying tuples.
    pub fn projection(&self) -> &[String] {
        &self.projection
    }

    /// Run the standard static pass pipeline
    /// ([`crate::plan::passes::PassRegistry::standard`]) over the plan.
    pub fn optimize(self) -> LogicalPlan<'t> {
        super::passes::PassRegistry::standard().run(self)
    }

    /// Lower to the flat compiled stage form the progressive runtime
    /// executes ([`crate::exec::program::CompiledProgram`]).
    pub fn compile(&self) -> Result<crate::exec::program::CompiledProgram<'t>, crate::EngineError> {
        crate::exec::program::CompiledProgram::from_plan(self)
    }

    /// Estimated input tuples per node under the static selectivity
    /// priors: node `k` sees `rows × Π_{j<k} prior_j`. The quantity
    /// filter pushdown must never increase at any position.
    pub fn input_estimates(&self) -> Vec<f64> {
        let mut input = self.fact.rows() as f64;
        self.nodes
            .iter()
            .map(|node| {
                let seen = input;
                input *= node.selectivity_prior();
                seen
            })
            .collect()
    }
}

/// Builder for [`LogicalPlan`]: the fluent single entry door.
///
/// ```
/// use popt_core::plan::{Expr, PlanBuilder};
/// # use popt_storage::{AddressSpace, ColumnData, Table};
/// # let mut space = AddressSpace::new();
/// # let mut fact = Table::new("fact");
/// # fact.add_column("val", ColumnData::I32((0..100).collect()), &mut space);
/// let plan = PlanBuilder::scan(&fact)
///     .filter(Expr::col("val").less_than(50))
///     .aggregate("val")
///     .build();
/// let program = plan.optimize().compile().unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct PlanBuilder<'t> {
    plan: LogicalPlan<'t>,
}

impl<'t> PlanBuilder<'t> {
    /// Start a plan scanning `fact`.
    pub fn scan(fact: &'t Table) -> Self {
        Self {
            plan: LogicalPlan {
                fact,
                nodes: Vec::new(),
                aggregates: Vec::new(),
                projection: Vec::new(),
            },
        }
    }

    /// Add a filter over fact-table columns.
    pub fn filter(self, predicate: impl Into<Expr>) -> Self {
        self.filter_costed(predicate, 0)
    }

    /// Add a filter whose lowered conjuncts each charge
    /// `extra_instructions` per evaluation (expensive predicates).
    pub fn filter_costed(mut self, predicate: impl Into<Expr>, extra_instructions: u64) -> Self {
        self.plan.nodes.push(LogicalNode::Filter {
            predicate: predicate.into(),
            extra_instructions,
        });
        self
    }

    /// Add a foreign-key join filter probing `dim` through `fk_column`,
    /// keeping joined rows satisfying `on`.
    pub fn join(
        mut self,
        dim: &'t Table,
        fk_column: impl Into<String>,
        on: impl Into<Expr>,
    ) -> Self {
        self.plan.nodes.push(LogicalNode::Join {
            dim,
            fk_column: fk_column.into(),
            on: on.into(),
        });
        self
    }

    /// Sum `column` (on the fact table) over qualifying tuples.
    pub fn aggregate(mut self, column: impl Into<String>) -> Self {
        self.plan.aggregates.push(column.into());
        self
    }

    /// Materialize `column` for qualifying tuples (adds a hot stream;
    /// projection pruning drops columns the stages already read).
    pub fn project(mut self, column: impl Into<String>) -> Self {
        self.plan.projection.push(column.into());
        self
    }

    /// Finish the plan. Validation happens at lowering
    /// ([`LogicalPlan::compile`]), so a builder chain itself never fails.
    pub fn build(self) -> LogicalPlan<'t> {
        self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparisons_fold_and_swap() {
        assert_eq!(Expr::lit(3).less_than(4).normalize(), Expr::Bool(true));
        assert_eq!(Expr::lit(4).less_than(4).normalize(), Expr::Bool(false));
        // literal on the left swaps onto the right with the mirrored op.
        let e = Expr::lit(10).greater_than(Expr::col("a")).normalize();
        assert_eq!(e.as_comparison(), Some(("a", CompareOp::Lt, 10)));
    }

    #[test]
    fn not_pushes_through_comparisons_and_de_morgan() {
        let e = Expr::col("a").less_than(5).negate().normalize();
        assert_eq!(e.as_comparison(), Some(("a", CompareOp::Ge, 5)));
        // NOT (a < 5 OR b >= 2) → a >= 5 AND b < 2.
        let e = Expr::col("a")
            .less_than(5)
            .or(Expr::col("b").at_least(2))
            .negate()
            .normalize();
        let conjuncts = e.conjuncts();
        assert_eq!(conjuncts.len(), 2);
        assert_eq!(conjuncts[0].as_comparison(), Some(("a", CompareOp::Ge, 5)));
        assert_eq!(conjuncts[1].as_comparison(), Some(("b", CompareOp::Lt, 2)));
        // Double negation cancels.
        let e = Expr::col("a").equal_to(1).negate().negate().normalize();
        assert_eq!(e.as_comparison(), Some(("a", CompareOp::Eq, 1)));
    }

    #[test]
    fn linear_forms_rearrange_onto_the_literal() {
        // a + 2 < 5 → a < 3 (also with the constant on the left).
        let e = Expr::col("a").plus(2).less_than(5).normalize();
        assert_eq!(e.as_comparison(), Some(("a", CompareOp::Lt, 3)));
        let e = Expr::lit(2).plus(Expr::col("a")).less_than(5).normalize();
        assert_eq!(e.as_comparison(), Some(("a", CompareOp::Lt, 3)));
        // a - 2 <= 5 → a <= 7.
        let e = Expr::col("a").minus(2).at_most(5).normalize();
        assert_eq!(e.as_comparison(), Some(("a", CompareOp::Le, 7)));
        // 10 - a < 4 → a > 6 (sign flip).
        let e = Expr::lit(10).minus(Expr::col("a")).less_than(4).normalize();
        assert_eq!(e.as_comparison(), Some(("a", CompareOp::Gt, 6)));
        // Constant arithmetic folds before the comparison sees it.
        let e = Expr::col("a").equal_to(Expr::lit(2).times(3)).normalize();
        assert_eq!(e.as_comparison(), Some(("a", CompareOp::Eq, 6)));
    }

    #[test]
    fn bool_constants_absorb_through_connectives() {
        let live = Expr::col("a").less_than(1);
        assert_eq!(
            live.clone().and(Expr::lit(1).less_than(2)).normalize(),
            live.clone().normalize()
        );
        assert_eq!(
            live.clone().and(Expr::lit(2).less_than(1)).normalize(),
            Expr::Bool(false)
        );
        assert_eq!(
            live.clone().or(Expr::lit(1).less_than(2)).normalize(),
            Expr::Bool(true)
        );
        assert_eq!(
            live.clone().or(Expr::lit(2).less_than(1)).normalize(),
            live.normalize()
        );
    }

    #[test]
    fn normalize_is_idempotent() {
        let exprs = [
            Expr::col("a").plus(2).less_than(5),
            Expr::col("a")
                .less_than(5)
                .or(Expr::col("b").at_least(2))
                .negate(),
            Expr::col("a").less_than(Expr::col("b")),
            Expr::col("a").times(2).less_than(5),
        ];
        for e in exprs {
            let once = e.clone().normalize();
            assert_eq!(once.clone().normalize(), once, "{}", e.display());
        }
    }

    #[test]
    fn overflowing_rearrangement_is_left_intact() {
        // i64::MIN - 1 would overflow: keep the shape, don't wrap.
        let e = Expr::col("a").plus(1).less_than(i64::MIN).normalize();
        assert_eq!(e.as_comparison(), None);
        assert!(matches!(e, Expr::Cmp(..)));
    }

    #[test]
    fn columns_and_display_walk_the_tree() {
        let e = Expr::col("a")
            .less_than(5)
            .and(Expr::col("b").equal_to(Expr::col("c")));
        assert_eq!(e.columns(), vec!["a", "b", "c"]);
        assert_eq!(e.display(), "(a < 5 AND b = c)");
    }
}
