//! Selection plans and predicate evaluation orders (PEOs).
//!
//! A multi-selection plan is an unordered *set* of conjunctive predicates
//! plus an aggregate; the **PEO** — the order in which the predicates are
//! wired into the short-circuit loop — is the runtime degree of freedom
//! the progressive optimizer adjusts (Section 2.1).
//!
//! The module also hosts the query frontend: [`logical`] holds the
//! [`logical::LogicalPlan`] builder layer (typed scan/filter/join/
//! aggregate nodes over arbitrary boolean predicate expressions) and
//! [`passes`] the static optimizer passes that rewrite a logical plan
//! before it is lowered to the compiled stage form
//! (`crate::exec::program`).

pub mod logical;
pub mod passes;

pub use logical::{Expr, LogicalNode, LogicalPlan, PlanBuilder};
pub use passes::PassRegistry;

use crate::error::EngineError;
use crate::predicate::Predicate;

/// A predicate evaluation order: a permutation of plan predicate indices.
pub type Peo = Vec<usize>;

/// Whether `order` is a permutation of `0..stages` — the one validity
/// rule every order-bearing structure shares (plans, pipelines, the
/// serving layer's order cache).
pub fn is_valid_peo(order: &[usize], stages: usize) -> bool {
    let mut seen = vec![false; stages];
    order.len() == stages
        && order
            .iter()
            .all(|&i| i < stages && !std::mem::replace(&mut seen[i], true))
}

/// A multi-selection query plan with a sum aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionPlan {
    /// The conjunctive predicates, in plan (not evaluation) order.
    pub predicates: Vec<Predicate>,
    /// Columns summed for qualifying tuples (empty = count only).
    pub aggregate_columns: Vec<String>,
}

impl SelectionPlan {
    /// Build a plan; at least one predicate is required.
    pub fn new(
        predicates: Vec<Predicate>,
        aggregate_columns: Vec<String>,
    ) -> Result<Self, EngineError> {
        if predicates.is_empty() {
            return Err(EngineError::EmptyPlan);
        }
        Ok(Self {
            predicates,
            aggregate_columns,
        })
    }

    /// Number of predicates.
    pub fn len(&self) -> usize {
        self.predicates.len()
    }

    /// Whether the plan has no predicates (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.predicates.is_empty()
    }

    /// The identity PEO `0, 1, …, p-1`.
    pub fn identity_peo(&self) -> Peo {
        (0..self.len()).collect()
    }

    /// Validate that `peo` is a permutation of this plan's predicates.
    pub fn validate_peo(&self, peo: &[usize]) -> Result<(), EngineError> {
        if is_valid_peo(peo, self.len()) {
            Ok(())
        } else {
            Err(EngineError::InvalidPeo {
                expected: self.len(),
                got: peo.to_vec(),
            })
        }
    }

    /// All `p!` PEOs in lexicographic order (the 120 permutations of
    /// Figures 11/13 for Q6's five predicates). Guarded against blowups.
    pub fn all_peos(&self) -> Vec<Peo> {
        assert!(self.len() <= 8, "refusing to enumerate more than 8! orders");
        let mut result = Vec::new();
        let mut current = self.identity_peo();
        permutations(&mut current, 0, &mut result);
        result.sort();
        result
    }

    /// Render a PEO as predicate text, e.g. for figure output.
    pub fn describe_peo(&self, peo: &[usize]) -> String {
        peo.iter()
            .map(|&i| self.predicates[i].display())
            .collect::<Vec<_>>()
            .join(" AND ")
    }
}

fn permutations(current: &mut Vec<usize>, k: usize, out: &mut Vec<Peo>) {
    if k == current.len() {
        out.push(current.clone());
        return;
    }
    for i in k..current.len() {
        current.swap(k, i);
        permutations(current, k + 1, out);
        current.swap(k, i);
    }
}

/// Order predicate indices ascending by estimated selectivity — the
/// reorder rule of Section 4.4 ("we reorder the predicates according to
/// the best estimation so far"): most selective first minimizes work.
///
/// `selectivities` are given in the order of `current_peo`; the result is
/// a new PEO over plan indices.
pub fn order_by_selectivity(current_peo: &[usize], selectivities: &[f64]) -> Peo {
    assert_eq!(current_peo.len(), selectivities.len());
    let mut pairs: Vec<(f64, usize)> = selectivities
        .iter()
        .copied()
        .zip(current_peo.iter().copied())
        .collect();
    // Stable order with plan index as tie-breaker for determinism.
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
    pairs.into_iter().map(|(_, idx)| idx).collect()
}

/// Order stage indices by the classic rank `cost / (1 − selectivity)`,
/// ascending — the optimal order for independent filters with differing
/// per-tuple costs. With equal costs this degenerates to
/// [`order_by_selectivity`]; with an LLC-thrashing join probe in the mix
/// it is what keeps a cheap selection in front of an expensive probe even
/// when the probe is the more selective stage (Sections 5.5–5.6).
///
/// `costs` and `selectivities` are given in the order of `current_order`;
/// a stage with selectivity ≥ 1 filters nothing and sorts last (by cost,
/// then plan index).
pub fn order_by_cost_per_tuple(
    current_order: &[usize],
    costs: &[f64],
    selectivities: &[f64],
) -> Peo {
    assert_eq!(current_order.len(), costs.len());
    assert_eq!(current_order.len(), selectivities.len());
    let mut entries: Vec<(f64, f64, usize)> = current_order
        .iter()
        .enumerate()
        .map(|(j, &idx)| {
            let s = selectivities[j].clamp(0.0, 1.0);
            let c = costs[j].max(0.0);
            let rank = if s >= 1.0 {
                f64::INFINITY
            } else {
                c / (1.0 - s)
            };
            (rank, c, idx)
        })
        .collect();
    entries.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .expect("ranks are not NaN")
            .then(a.1.partial_cmp(&b.1).expect("costs are not NaN"))
            .then(a.2.cmp(&b.2))
    });
    entries.into_iter().map(|(_, _, idx)| idx).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CompareOp;

    fn plan(p: usize) -> SelectionPlan {
        let preds = (0..p)
            .map(|i| Predicate::new(format!("c{i}"), CompareOp::Lt, 10))
            .collect();
        SelectionPlan::new(preds, vec!["agg".into()]).unwrap()
    }

    #[test]
    fn empty_plan_rejected() {
        assert_eq!(
            SelectionPlan::new(vec![], vec![]).unwrap_err(),
            EngineError::EmptyPlan
        );
    }

    #[test]
    fn peo_validation() {
        let p = plan(3);
        assert!(p.validate_peo(&[0, 1, 2]).is_ok());
        assert!(p.validate_peo(&[2, 0, 1]).is_ok());
        assert!(p.validate_peo(&[0, 1]).is_err());
        assert!(p.validate_peo(&[0, 1, 1]).is_err());
        assert!(p.validate_peo(&[0, 1, 3]).is_err());
    }

    #[test]
    fn all_peos_counts_factorial() {
        assert_eq!(plan(1).all_peos().len(), 1);
        assert_eq!(plan(3).all_peos().len(), 6);
        assert_eq!(plan(5).all_peos().len(), 120);
    }

    #[test]
    fn all_peos_are_distinct_permutations() {
        let p = plan(4);
        let orders = p.all_peos();
        assert_eq!(orders.len(), 24);
        for o in &orders {
            assert!(p.validate_peo(o).is_ok());
        }
        let mut dedup = orders.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 24);
    }

    #[test]
    fn order_by_selectivity_ascending() {
        let peo = vec![2, 0, 1];
        let sels = vec![0.9, 0.1, 0.5];
        // predicate 2 has sel 0.9, predicate 0 has 0.1, predicate 1 has 0.5
        assert_eq!(order_by_selectivity(&peo, &sels), vec![0, 1, 2]);
    }

    #[test]
    fn order_by_selectivity_tie_breaks_by_plan_index() {
        let peo = vec![3, 1, 2, 0];
        let sels = vec![0.5, 0.5, 0.5, 0.5];
        assert_eq!(order_by_selectivity(&peo, &sels), vec![0, 1, 2, 3]);
    }

    #[test]
    fn cost_rank_reduces_to_selectivity_with_equal_costs() {
        let peo = vec![2usize, 0, 1];
        let sels = vec![0.9, 0.1, 0.5];
        let costs = vec![3.0, 3.0, 3.0];
        assert_eq!(
            order_by_cost_per_tuple(&peo, &costs, &sels),
            order_by_selectivity(&peo, &sels)
        );
    }

    #[test]
    fn expensive_selective_stage_ranks_behind_cheap_one() {
        // Stage 0: cost 100, sel 0.5 -> rank 200. Stage 1: cost 2,
        // sel 0.9 -> rank 20. The cheap-but-unselective stage goes first.
        let peo = vec![0usize, 1];
        assert_eq!(
            order_by_cost_per_tuple(&peo, &[100.0, 2.0], &[0.5, 0.9]),
            vec![1, 0]
        );
    }

    #[test]
    fn non_filtering_stage_goes_last() {
        let peo = vec![0usize, 1, 2];
        let order = order_by_cost_per_tuple(&peo, &[1.0, 5.0, 1.0], &[1.0, 0.5, 0.5]);
        assert_eq!(*order.last().unwrap(), 0);
        // Two non-filtering stages tie-break by cost, then plan index.
        let order = order_by_cost_per_tuple(&peo, &[1.0, 5.0, 1.0], &[1.0, 1.0, 0.5]);
        assert_eq!(order, vec![2, 0, 1]);
    }

    #[test]
    fn describe_peo_renders_in_order() {
        let p = plan(2);
        let s = p.describe_peo(&[1, 0]);
        assert_eq!(s, "c1 < 10 AND c0 < 10");
    }
}
