//! Static optimizer passes over [`LogicalPlan`]s.
//!
//! Each pass is a pure `fn(LogicalPlan) -> LogicalPlan` rewrite; the
//! [`PassRegistry`] runs them in declared order. Passes are individually
//! testable and *optional for correctness*: lowering
//! ([`crate::exec::program::CompiledProgram::from_plan`]) performs the
//! same expression normalization itself, so a pass can only change which
//! stages exist and in what plan order — never the query's result. The
//! proptest suite pins that running the registry in any order compiles
//! to a semantically identical program.

use super::logical::{Expr, LogicalNode, LogicalPlan};

/// A static plan rewrite: pure, total, result-preserving.
pub type Pass = for<'t> fn(LogicalPlan<'t>) -> LogicalPlan<'t>;

/// Named passes run in declared order.
#[derive(Clone)]
pub struct PassRegistry {
    passes: Vec<(&'static str, Pass)>,
}

impl PassRegistry {
    /// The standard pipeline: constant folding, join-condition
    /// extraction, filter pushdown, projection pruning.
    pub fn standard() -> Self {
        Self {
            passes: vec![
                ("constant-folding", constant_folding as Pass),
                (
                    "join-condition-extraction",
                    join_condition_extraction as Pass,
                ),
                ("filter-pushdown", filter_pushdown as Pass),
                ("projection-pruning", projection_pruning as Pass),
            ],
        }
    }

    /// An empty registry to compose a custom order onto.
    pub fn empty() -> Self {
        Self { passes: Vec::new() }
    }

    /// Append a named pass (builder style).
    pub fn with(mut self, name: &'static str, pass: Pass) -> Self {
        self.passes.push((name, pass));
        self
    }

    /// The registered `(name, pass)` pairs, in run order.
    pub fn passes(&self) -> &[(&'static str, Pass)] {
        &self.passes
    }

    /// Registered pass names, in run order.
    pub fn names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|(name, _)| *name).collect()
    }

    /// Number of registered passes.
    pub fn len(&self) -> usize {
        self.passes.len()
    }

    /// Whether no passes are registered.
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// Run every pass over `plan`, in declared order.
    pub fn run<'t>(&self, plan: LogicalPlan<'t>) -> LogicalPlan<'t> {
        self.passes.iter().fold(plan, |plan, (_, pass)| pass(plan))
    }
}

impl std::fmt::Debug for PassRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PassRegistry")
            .field("passes", &self.names())
            .finish()
    }
}

/// Normalize every predicate expression ([`Expr::normalize`]) and drop
/// filters that folded to `TRUE`. A filter folding to `FALSE` is *kept*:
/// the plan qualifies nothing, and lowering reports that shape
/// explicitly rather than a pass silently deciding the query's result.
pub fn constant_folding(mut plan: LogicalPlan<'_>) -> LogicalPlan<'_> {
    plan.nodes = plan
        .nodes
        .into_iter()
        .filter_map(|node| match node {
            LogicalNode::Filter {
                predicate,
                extra_instructions,
            } => match predicate.normalize() {
                Expr::Bool(true) => None,
                predicate => Some(LogicalNode::Filter {
                    predicate,
                    extra_instructions,
                }),
            },
            LogicalNode::Join { dim, fk_column, on } => Some(LogicalNode::Join {
                dim,
                fk_column,
                on: on.normalize(),
            }),
        })
        .collect();
    plan
}

/// Split each join's `on` conjunction: conjuncts over dimension columns
/// stay with the probe, conjuncts over fact columns become standalone
/// filters *before* the join (they never needed the probe to evaluate).
/// Conjuncts naming neither table's columns are left on the join for
/// lowering to reject with the precise error.
pub fn join_condition_extraction(mut plan: LogicalPlan<'_>) -> LogicalPlan<'_> {
    let fact = plan.fact;
    let mut nodes = Vec::with_capacity(plan.nodes.len());
    for node in plan.nodes {
        match node {
            LogicalNode::Join { dim, fk_column, on } => {
                let mut kept: Option<Expr> = None;
                for conjunct in on.normalize().conjuncts() {
                    let is_fact_conjunct = match conjunct.as_comparison() {
                        Some((column, _, _)) => {
                            dim.column_index(column).is_none()
                                && fact.column_index(column).is_some()
                        }
                        None => false,
                    };
                    if is_fact_conjunct {
                        nodes.push(LogicalNode::Filter {
                            predicate: conjunct,
                            extra_instructions: 0,
                        });
                    } else {
                        kept = Some(match kept {
                            Some(prev) => prev.and(conjunct),
                            None => conjunct,
                        });
                    }
                }
                nodes.push(LogicalNode::Join {
                    dim,
                    fk_column,
                    on: kept.unwrap_or(Expr::Bool(true)),
                });
            }
            other => nodes.push(other),
        }
    }
    plan.nodes = nodes;
    plan
}

/// Stable-partition filters in front of joins. Filters only read fact
/// columns, so evaluating them before any probe is always result-
/// preserving — and under the static priors (filters keep less than
/// probes) it minimizes every node's estimated input cardinality
/// ([`LogicalPlan::input_estimates`]).
pub fn filter_pushdown(mut plan: LogicalPlan<'_>) -> LogicalPlan<'_> {
    let (filters, joins): (Vec<_>, Vec<_>) =
        plan.nodes.into_iter().partition(|node| !node.is_join());
    plan.nodes = filters;
    plan.nodes.extend(joins);
    plan
}

/// Drop projection columns the compiled stages already materialize —
/// stage input columns and aggregate columns are hot regardless — and
/// deduplicate the rest. Fewer projected streams means a smaller
/// declared hot-set footprint under shared-LLC partitioning.
pub fn projection_pruning(mut plan: LogicalPlan<'_>) -> LogicalPlan<'_> {
    let mut covered: Vec<String> = plan.aggregates.clone();
    for node in &plan.nodes {
        match node {
            LogicalNode::Filter { predicate, .. } => {
                covered.extend(predicate.columns().iter().map(|c| c.to_string()));
            }
            LogicalNode::Join { fk_column, .. } => covered.push(fk_column.clone()),
        }
    }
    let mut kept: Vec<String> = Vec::new();
    for column in plan.projection {
        if !covered.contains(&column) && !kept.contains(&column) {
            kept.push(column);
        }
    }
    plan.projection = kept;
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanBuilder;
    use popt_storage::{AddressSpace, ColumnData, Table};

    fn tables() -> (Table, Table) {
        let mut space = AddressSpace::new();
        let mut fact = Table::new("fact");
        fact.add_column("val", ColumnData::I32((0..64).collect()), &mut space);
        fact.add_column(
            "fk",
            ColumnData::I32((0..64).map(|i| i % 8).collect()),
            &mut space,
        );
        let mut dim_space = AddressSpace::new();
        let mut dim = Table::new("dim");
        dim.add_column("payload", ColumnData::I32((0..8).collect()), &mut dim_space);
        (fact, dim)
    }

    #[test]
    fn constant_folding_drops_true_filters_and_keeps_false() {
        let (fact, _) = tables();
        let plan = PlanBuilder::scan(&fact)
            .filter(Expr::lit(1).less_than(2))
            .filter(Expr::col("val").less_than(10))
            .build();
        let folded = constant_folding(plan);
        assert_eq!(folded.nodes().len(), 1);

        let plan = PlanBuilder::scan(&fact)
            .filter(Expr::lit(2).less_than(1))
            .build();
        let folded = constant_folding(plan);
        assert_eq!(
            folded.nodes().len(),
            1,
            "FALSE is a lowering error, not a pass decision"
        );
    }

    #[test]
    fn join_condition_extraction_splits_fact_conjuncts_out() {
        let (fact, dim) = tables();
        let plan = PlanBuilder::scan(&fact)
            .join(
                &dim,
                "fk",
                Expr::col("payload")
                    .less_than(5)
                    .and(Expr::col("val").less_than(32)),
            )
            .build();
        let rewritten = join_condition_extraction(plan);
        assert_eq!(rewritten.nodes().len(), 2);
        assert!(
            !rewritten.nodes()[0].is_join(),
            "fact conjunct became a filter"
        );
        assert!(rewritten.nodes()[1].is_join());
        match &rewritten.nodes()[1] {
            LogicalNode::Join { on, .. } => {
                assert_eq!(
                    on.as_comparison().map(|(c, _, _)| c),
                    Some("payload"),
                    "dimension conjunct stays on the probe"
                );
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn filter_pushdown_partitions_stably_and_never_raises_estimates() {
        let (fact, dim) = tables();
        let plan = PlanBuilder::scan(&fact)
            .join(&dim, "fk", Expr::col("payload").less_than(5))
            .filter(Expr::col("val").less_than(10))
            .filter(Expr::col("val").greater_than(2))
            .build();
        let before = plan.input_estimates();
        let pushed = filter_pushdown(plan);
        assert!(!pushed.nodes()[0].is_join());
        assert!(!pushed.nodes()[1].is_join());
        assert!(pushed.nodes()[2].is_join());
        let after = pushed.input_estimates();
        for (k, (b, a)) in before.iter().zip(&after).enumerate() {
            assert!(a <= b, "position {k}: {a} > {b}");
        }
    }

    #[test]
    fn projection_pruning_drops_covered_and_duplicate_columns() {
        let (fact, dim) = tables();
        let plan = PlanBuilder::scan(&fact)
            .filter(Expr::col("val").less_than(10))
            .join(&dim, "fk", Expr::col("payload").less_than(5))
            .project("val")
            .project("fk")
            .project("val")
            .build();
        let pruned = projection_pruning(plan);
        assert!(pruned.projection().is_empty(), "{:?}", pruned.projection());
    }

    #[test]
    fn registry_reports_names_in_declared_order() {
        let registry = PassRegistry::standard();
        assert_eq!(
            registry.names(),
            vec![
                "constant-folding",
                "join-condition-extraction",
                "filter-pushdown",
                "projection-pruning",
            ]
        );
        assert_eq!(registry.len(), 4);
        assert!(!registry.is_empty());
        assert!(PassRegistry::empty().is_empty());
    }
}
