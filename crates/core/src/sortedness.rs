//! Counter-based access-pattern classification and join-order advice
//! (Sections 5.5–5.6).
//!
//! "This kind of sortedness analysis can only be derived from performance
//! counters. In particular, counting the number of qualifying tuples per
//! vector is not sufficient." The detector compares the *measured* cache
//! misses of an access stream against the miss count Equation 1 predicts
//! for a purely random pattern over the same relation: a ratio near one
//! means the pattern really is random; a ratio far below one exposes
//! sortedness/co-clusteredness — and with it, the cheap join that should
//! run first.

use popt_cost::join_model::{clustering_ratio, random_misses, JoinGeometry};

/// Classification of an access stream into a relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPattern {
    /// Measured misses far below the random prediction: the stream is
    /// (co-)clustered and cache friendly.
    CoClustered,
    /// In between: partial locality.
    Mixed,
    /// Measured misses match the random prediction.
    Random,
}

/// Default ratio below which a stream counts as co-clustered.
pub const CO_CLUSTERED_THRESHOLD: f64 = 0.35;
/// Default ratio above which a stream counts as random.
pub const RANDOM_THRESHOLD: f64 = 0.75;

/// Classify an access stream from its measured miss count.
///
/// `accesses` is the number of probes into the relation described by
/// `geom`; `measured_misses` the cache misses attributed to them.
pub fn classify(geom: &JoinGeometry, accesses: u64, measured_misses: u64) -> AccessPattern {
    if accesses == 0 {
        return AccessPattern::CoClustered;
    }
    let ratio = clustering_ratio(geom, accesses, measured_misses);
    if ratio < CO_CLUSTERED_THRESHOLD {
        AccessPattern::CoClustered
    } else if ratio > RANDOM_THRESHOLD {
        AccessPattern::Random
    } else {
        AccessPattern::Mixed
    }
}

/// Measured behaviour of one join candidate (one probe stream).
#[derive(Debug, Clone, PartialEq)]
pub struct JoinObservation {
    /// Label for reports (e.g. `"orders"`, `"part"`).
    pub name: String,
    /// Geometry of the probed relation.
    pub geometry: JoinGeometry,
    /// Probes performed during the sample.
    pub accesses: u64,
    /// Cache misses measured for those probes.
    pub measured_misses: u64,
}

impl JoinObservation {
    /// Misses per probe — the cost signal used for ordering.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.measured_misses as f64 / self.accesses as f64
        }
    }

    /// The classification of this stream.
    pub fn pattern(&self) -> AccessPattern {
        classify(&self.geometry, self.accesses, self.measured_misses)
    }

    /// Misses per probe the random model would predict.
    pub fn predicted_random_miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            random_misses(&self.geometry, self.accesses) / self.accesses as f64
        }
    }
}

/// Recommend a join order: ascending by measured miss rate, i.e.
/// co-clustered joins first (Section 5.6: "eventually switching to a join
/// order where a co-clustered join is executed first").
///
/// Returns indices into `observations`.
pub fn recommend_join_order(observations: &[JoinObservation]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..observations.len()).collect();
    order.sort_by(|&a, &b| {
        observations[a]
            .miss_rate()
            .partial_cmp(&observations[b].miss_rate())
            .expect("miss rates are finite")
            .then(a.cmp(&b))
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> JoinGeometry {
        JoinGeometry {
            relation_tuples: 1_000_000,
            tuple_bytes: 4,
            line_bytes: 64,
            cache_lines: 16 * 1024, // 1 MiB cache vs 4 MB relation
        }
    }

    #[test]
    fn random_measurement_classifies_random() {
        let g = geom();
        let accesses = 100_000;
        let misses = random_misses(&g, accesses).round() as u64;
        assert_eq!(classify(&g, accesses, misses), AccessPattern::Random);
    }

    #[test]
    fn sequential_measurement_classifies_coclustered() {
        let g = geom();
        let accesses = 100_000u64;
        // Near-sequential: one miss per 16 probes.
        assert_eq!(
            classify(&g, accesses, accesses / 16),
            AccessPattern::CoClustered
        );
    }

    #[test]
    fn intermediate_is_mixed() {
        let g = geom();
        let accesses = 100_000u64;
        let random = random_misses(&g, accesses) as u64;
        assert_eq!(classify(&g, accesses, random / 2), AccessPattern::Mixed);
    }

    #[test]
    fn zero_accesses_are_harmless() {
        assert_eq!(classify(&geom(), 0, 0), AccessPattern::CoClustered);
    }

    #[test]
    fn join_order_prefers_coclustered_first() {
        let obs = vec![
            JoinObservation {
                name: "part".into(),
                geometry: geom(),
                accesses: 10_000,
                measured_misses: 9_000, // random-ish
            },
            JoinObservation {
                name: "orders".into(),
                geometry: geom(),
                accesses: 10_000,
                measured_misses: 700, // co-clustered
            },
        ];
        assert_eq!(recommend_join_order(&obs), vec![1, 0]);
        assert_eq!(obs[1].pattern(), AccessPattern::CoClustered);
        assert_eq!(obs[0].pattern(), AccessPattern::Random);
    }

    #[test]
    fn order_is_deterministic_on_ties() {
        let mk = |n: &str| JoinObservation {
            name: n.into(),
            geometry: geom(),
            accesses: 100,
            measured_misses: 50,
        };
        assert_eq!(recommend_join_order(&[mk("a"), mk("b")]), vec![0, 1]);
    }
}
