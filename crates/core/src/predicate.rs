//! Predicates over columns: the atoms of a multi-selection query.

/// Comparison operator of a predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompareOp {
    /// `column < literal`
    Lt,
    /// `column <= literal`
    Le,
    /// `column > literal`
    Gt,
    /// `column >= literal`
    Ge,
    /// `column == literal`
    Eq,
    /// `column != literal`
    Ne,
}

impl CompareOp {
    /// Evaluate the comparison.
    #[inline]
    pub fn eval(&self, value: i64, literal: i64) -> bool {
        match self {
            CompareOp::Lt => value < literal,
            CompareOp::Le => value <= literal,
            CompareOp::Gt => value > literal,
            CompareOp::Ge => value >= literal,
            CompareOp::Eq => value == literal,
            CompareOp::Ne => value != literal,
        }
    }

    /// The comparison that accepts exactly the values this one rejects
    /// (`NOT (a < b)` ⇔ `a >= b`). Used to push `Not` through
    /// comparisons when normalizing predicate expressions.
    pub fn negated(&self) -> CompareOp {
        match self {
            CompareOp::Lt => CompareOp::Ge,
            CompareOp::Le => CompareOp::Gt,
            CompareOp::Gt => CompareOp::Le,
            CompareOp::Ge => CompareOp::Lt,
            CompareOp::Eq => CompareOp::Ne,
            CompareOp::Ne => CompareOp::Eq,
        }
    }

    /// The comparison with its operands exchanged (`a < b` ⇔ `b > a`).
    /// Used to rewrite `literal OP column` into the canonical
    /// `column OP literal` form.
    pub fn swapped(&self) -> CompareOp {
        match self {
            CompareOp::Lt => CompareOp::Gt,
            CompareOp::Le => CompareOp::Ge,
            CompareOp::Gt => CompareOp::Lt,
            CompareOp::Ge => CompareOp::Le,
            CompareOp::Eq => CompareOp::Eq,
            CompareOp::Ne => CompareOp::Ne,
        }
    }

    /// SQL-ish rendering for plan display.
    pub fn symbol(&self) -> &'static str {
        match self {
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
            CompareOp::Eq => "=",
            CompareOp::Ne => "<>",
        }
    }
}

/// One conjunct of a multi-selection query: `column OP literal`, with an
/// optional extra per-evaluation instruction cost for modelling expensive
/// predicates (UDFs, `LIKE`, …; Section 5.5 uses one).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Predicate {
    /// Name of the column the predicate reads.
    pub column: String,
    /// Comparison operator.
    pub op: CompareOp,
    /// Literal to compare against.
    pub literal: i64,
    /// Extra instructions charged per evaluation (0 for plain compares).
    pub extra_instructions: u64,
}

impl Predicate {
    /// A plain comparison predicate.
    pub fn new(column: impl Into<String>, op: CompareOp, literal: i64) -> Self {
        Self {
            column: column.into(),
            op,
            literal,
            extra_instructions: 0,
        }
    }

    /// Mark the predicate as expensive (builder style).
    pub fn expensive(mut self, extra_instructions: u64) -> Self {
        self.extra_instructions = extra_instructions;
        self
    }

    /// Evaluate against a value.
    #[inline]
    pub fn eval(&self, value: i64) -> bool {
        self.op.eval(value, self.literal)
    }

    /// Human-readable rendering, e.g. `l_quantity < 24`.
    pub fn display(&self) -> String {
        format!("{} {} {}", self.column, self.op.symbol(), self.literal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_operators_evaluate() {
        assert!(CompareOp::Lt.eval(1, 2));
        assert!(!CompareOp::Lt.eval(2, 2));
        assert!(CompareOp::Le.eval(2, 2));
        assert!(CompareOp::Gt.eval(3, 2));
        assert!(CompareOp::Ge.eval(2, 2));
        assert!(CompareOp::Eq.eval(5, 5));
        assert!(CompareOp::Ne.eval(5, 6));
    }

    #[test]
    fn negated_and_swapped_agree_with_eval() {
        let ops = [
            CompareOp::Lt,
            CompareOp::Le,
            CompareOp::Gt,
            CompareOp::Ge,
            CompareOp::Eq,
            CompareOp::Ne,
        ];
        for op in ops {
            for a in -2..=2i64 {
                for b in -2..=2i64 {
                    assert_eq!(op.eval(a, b), !op.negated().eval(a, b), "{op:?} {a} {b}");
                    assert_eq!(op.eval(a, b), op.swapped().eval(b, a), "{op:?} {a} {b}");
                }
            }
            assert_eq!(op.negated().negated(), op);
            assert_eq!(op.swapped().swapped(), op);
        }
    }

    #[test]
    fn predicate_eval_and_display() {
        let p = Predicate::new("l_quantity", CompareOp::Lt, 24);
        assert!(p.eval(23));
        assert!(!p.eval(24));
        assert_eq!(p.display(), "l_quantity < 24");
    }

    #[test]
    fn expensive_builder() {
        let p = Predicate::new("x", CompareOp::Eq, 0).expensive(50);
        assert_eq!(p.extra_instructions, 50);
    }
}
