//! # popt-core — vectorized execution with progressive optimization
//!
//! The paper's primary contribution: a vectorized, column-at-a-time
//! execution engine whose multi-selection scans are **re-optimized during
//! execution** from non-invasive performance counters (Sections 4.4–4.5),
//! plus the sortedness/co-clusteredness detection that extends the
//! approach to join ordering (Sections 5.5–5.6).
//!
//! * [`predicate`] / [`plan`] — predicate and plan representation, PEO
//!   permutation utilities, and the **query frontend**: a typed
//!   [`plan::LogicalPlan`] builder ([`plan::PlanBuilder`], the single
//!   entry door for query construction), static optimizer passes
//!   ([`plan::PassRegistry`]: constant folding, join-condition
//!   extraction, filter pushdown, projection pruning), and lowering to
//!   the compiled flat stage form ([`exec::program::CompiledProgram`])
//!   the progressive runtime reorders with a cheap permutation re-emit;
//! * [`exec`] — the "compiled" scan loop (the short-circuit branch
//!   code of Section 2.1 driven against the simulated CPU), the foreign-key
//!   join-filter operator, and the invasive enumerator baseline of
//!   Section 5.7;
//! * [`progressive`] — the progressive optimization loop of Figure 10:
//!   sample counters per vector, estimate selectivities, reorder, trial,
//!   revert on regression. The loop is executor-agnostic
//!   ([`progressive::ProgressiveTarget`]): it drives both the
//!   multi-selection scan and — via
//!   [`progressive::run_progressive_pipeline`] — mixed
//!   selection/join-filter pipelines, where stages are ranked by estimated
//!   cost per input tuple and probe locality is calibrated from the
//!   counters (Sections 5.5–5.6);
//! * [`parallel`] — morsel-driven parallel execution with *shared*
//!   progressive reoptimization: worker threads drive independent
//!   simulated cores over cache-friendly morsels, per-worker counter
//!   samples fuse into one pool-wide estimate, accepted orders are
//!   epoch-published to every worker, and trial orders are leased to
//!   exactly one core;
//! * [`serve`] — multi-query serving over the shared pool: admission by
//!   arrival time, stride scheduling by priority, per-query progressive
//!   coordination, and a cross-query order/calibration cache that lets a
//!   repeated query template start from its last converged state;
//! * [`sortedness`] — counter-based access-pattern classification and join
//!   reordering advice;
//! * [`query`] — a high-level builder API (TPC-H Q6 ships as a preset).
//!
//! ```
//! use popt_core::query::{QueryBuilder, RunMode};
//! use popt_storage::tpch::{generate_lineitem, TpchConfig};
//!
//! let table = generate_lineitem(&TpchConfig::tiny());
//! let baseline = QueryBuilder::q6(&table)
//!     .run(RunMode::Baseline)
//!     .unwrap();
//! let optimized = QueryBuilder::q6(&table)
//!     .run(RunMode::Progressive { reop_interval: 2 })
//!     .unwrap();
//! // Same answer, independent of how the plan was reordered mid-query.
//! assert_eq!(baseline.result.sum, optimized.result.sum);
//! ```

pub mod error;
pub mod exec;
pub mod observe;
pub mod parallel;
pub mod plan;
pub mod predicate;
pub mod progressive;
pub mod query;
pub mod serve;
pub mod sortedness;

pub use error::EngineError;
pub use exec::pipeline::{FilterOp, Pipeline};
pub use exec::program::{CompiledProgram, CompiledStage};
pub use observe::ExecObservers;
pub use parallel::{
    run_parallel_pipeline, run_parallel_pipeline_observed, run_parallel_program,
    run_parallel_program_observed, run_parallel_program_traced, run_parallel_scan,
    run_parallel_scan_traced, run_parallel_target, run_parallel_target_observed,
    run_parallel_target_traced, MorselConfig, MorselDispatcher, ParallelReport, ShardableTarget,
    TargetShard,
};
pub use plan::{Expr, LogicalNode, LogicalPlan, PassRegistry, Peo, PlanBuilder, SelectionPlan};
pub use predicate::{CompareOp, Predicate};
pub use progressive::{
    run_baseline, run_progressive, run_progressive_pipeline, run_progressive_program,
    run_progressive_program_observed, run_progressive_target, run_progressive_target_observed,
    CompiledTarget, ProgressiveConfig, ProgressiveReport, ProgressiveTarget, VectorConfig,
};
pub use query::{QueryBuilder, QueryReport, RunMode};
pub use serve::{
    CacheStats, OrderCache, Priority, QueryServer, QuerySpec, ServeConfig, ServeReport,
    StrideScheduler, WarmRecordOutcome, WorkloadSignature,
};
