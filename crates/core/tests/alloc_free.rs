//! Steady-state execution must not touch the heap.
//!
//! A counting wrapper around the system allocator pins the
//! allocation-free property of the hot loops: after compilation and CPU
//! construction, executing rows through the batched fast path performs
//! zero allocations (serial), and the parallel claim → execute → sample
//! loop performs none per morsel (total allocations are independent of
//! the morsel count when reoptimization is off).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

use popt_core::exec::CompiledSelection;
use popt_core::parallel::{run_parallel_scan, MorselConfig};
use popt_core::plan::SelectionPlan;
use popt_core::predicate::{CompareOp, Predicate};
use popt_cpu::{CpuConfig, CpuPool, SimCpu};
use popt_storage::{AddressSpace, ColumnData, Table};

fn table(rows: usize) -> Table {
    let mut space = AddressSpace::new();
    let mut t = Table::new("t");
    t.add_column(
        "a",
        ColumnData::I32((0..rows).map(|i| (i % 100) as i32).collect()),
        &mut space,
    );
    t.add_column(
        "b",
        ColumnData::I32((0..rows).map(|i| (i / 7 % 10) as i32).collect()),
        &mut space,
    );
    t.add_column("agg", ColumnData::I32(vec![2; rows]), &mut space);
    t
}

fn expected_qualified(rows: usize) -> usize {
    (0..rows)
        .filter(|i| (i % 100) < 50 && (i / 7 % 10) < 5)
        .count()
}

fn plan() -> SelectionPlan {
    SelectionPlan::new(
        vec![
            Predicate::new("a", CompareOp::Lt, 50),
            Predicate::new("b", CompareOp::Lt, 5),
        ],
        vec!["agg".into()],
    )
    .unwrap()
}

/// Serial morsel loop: after one warmup vector (stream-state slots may
/// lazily extend on first touch), executing any number of further
/// vectors through the batched fast path allocates nothing.
#[test]
fn serial_vector_loop_is_allocation_free() {
    let rows = 64 * 1024;
    let t = table(rows);
    let compiled = CompiledSelection::compile(&t, &plan(), &[0, 1]).unwrap();
    let mut cpu = SimCpu::new(CpuConfig::tiny_test());
    let mut total = compiled.run_range(&mut cpu, 0, 1024);
    let before = allocations();
    for start in (1024..rows).step_by(1024) {
        let stats = compiled.run_range(&mut cpu, start, start + 1024);
        total.accumulate(&stats);
    }
    let delta = allocations() - before;
    assert_eq!(delta, 0, "steady-state vectors allocated {delta} times");
    assert_eq!(total.qualified as usize, expected_qualified(rows));
}

/// Parallel claim → execute → sample loop: with reoptimization off, the
/// run's total allocation count is a function of the setup (workers,
/// shards, report), not of how many morsels stream through it. Running
/// 4× the rows over the same morsel size must allocate exactly as often
/// as the short run.
#[test]
fn parallel_morsel_loop_is_allocation_free() {
    let run = |rows: usize| {
        let t = table(rows);
        let p = plan();
        let mut pool = CpuPool::new(CpuConfig::tiny_test(), 4);
        let before = allocations();
        let report =
            run_parallel_scan(&t, &p, &[0, 1], MorselConfig::new(512), &mut pool, None).unwrap();
        let delta = allocations() - before;
        assert_eq!(report.qualified as usize, expected_qualified(rows));
        delta
    };
    // Warm both shapes once: lazily initialized process state (thread
    // stack caches, lock shards) must not be charged to either side.
    run(8 * 1024);
    run(32 * 1024);
    let short = run(8 * 1024);
    let long = run(32 * 1024);
    assert_eq!(
        short, long,
        "morsel count leaked into allocations: {short} vs {long} (48 more morsels)"
    );
}
