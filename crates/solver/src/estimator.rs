//! The selectivity estimator: multi-start Nelder–Mead over the
//! Equation-10 objective.
//!
//! Given the counters sampled for one execution interval (branches not
//! taken, mispredictions split by direction, L3 accesses — gathered
//! simultaneously on real PMUs, Section 4.2), find the survivor vector
//! whose model-predicted counters match best. The outer loop follows
//! Section 4.4: draw start points, run the local optimizer, and stop when
//! either no better optimum appeared in the last `n` rounds or `m = 2·p`
//! rounds have run.
//!
//! Two exact identities shrink the problem before any optimization
//! happens: the output cardinality is known from `2·n − bT`
//! (Section 2.2), pinning the last survivor count, and the sampled BNT
//! equals the survivor sum, bounding every other coordinate (Section 4.1).
//!
//! ## Objective
//!
//! The paper prints Equation 10 as a sum of signed differences; minimized
//! literally that diverges, so — as any faithful implementation must — we
//! take the magnitude. Each counter residual is normalized by its sampled
//! value (so tuples-scaled and lines-scaled counters weigh comparably)
//! and weighted by [`CounterWeights`], whose default enables all four
//! counters; the ablation benches zero individual weights.

use popt_cost::estimate::{estimate_counters, survivors_to_selectivities, PlanGeometry};

use crate::bounds::{bnt_bounds, SearchBounds};
use crate::nelder_mead::{minimize, NelderMeadOptions};
use crate::start_points::StartPointGenerator;

/// The counters sampled for one interval, as consumed by the estimator.
///
/// The window is whatever scope the caller accumulated over; the solver
/// never mixes scopes itself. On a multi-socket pool each socket fits its
/// *own* windows — only counters accumulated by that socket's workers,
/// priced against that socket's geometry (LLC partition and remote
/// fraction) — so one socket's contention or remote traffic never leaks
/// into another's selectivity fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampledCounters {
    /// Tuples processed in the interval.
    pub n_input: u64,
    /// Qualifying tuples (derived by the engine from `2·n − bT`).
    pub n_output: u64,
    /// Branches not taken across the predicate sites.
    pub bnt: u64,
    /// Mispredicted taken branches.
    pub mp_taken: u64,
    /// Mispredicted not-taken branches.
    pub mp_not_taken: u64,
    /// L3 accesses (demand + prefetch).
    pub l3_accesses: u64,
}

impl SampledCounters {
    /// Fold another interval's sample into this one.
    ///
    /// Parallel workers sample their own per-core PMU banks over disjoint
    /// morsels of the same scan; because every counter is an additive
    /// event count, the fused sample is exactly what a single core would
    /// have measured executing all those morsels under the same order —
    /// so one estimator run can serve the whole pool.
    pub fn merge(&mut self, other: &SampledCounters) {
        self.n_input += other.n_input;
        self.n_output += other.n_output;
        self.bnt += other.bnt;
        self.mp_taken += other.mp_taken;
        self.mp_not_taken += other.mp_not_taken;
        self.l3_accesses += other.l3_accesses;
    }

    /// Fuse per-worker samples into the pool-wide sample. Returns `None`
    /// for an empty slice (no worker contributed to the window).
    pub fn merged(samples: &[SampledCounters]) -> Option<SampledCounters> {
        let mut iter = samples.iter();
        let mut total = *iter.next()?;
        for s in iter {
            total.merge(s);
        }
        Some(total)
    }
}

/// Per-counter weights in the objective (1.0 = paper default, 0.0 =
/// excluded; used by the counter-subset ablation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CounterWeights {
    /// Weight of the branches-not-taken residual.
    pub bnt: f64,
    /// Weight of the mispredicted-taken residual.
    pub mp_taken: f64,
    /// Weight of the mispredicted-not-taken residual.
    pub mp_not_taken: f64,
    /// Weight of the L3-access residual.
    pub l3: f64,
}

impl Default for CounterWeights {
    fn default() -> Self {
        Self {
            bnt: 1.0,
            mp_taken: 1.0,
            mp_not_taken: 1.0,
            l3: 1.0,
        }
    }
}

impl CounterWeights {
    /// Only the BNT counter (the weakest configuration — BNT alone cannot
    /// distinguish permutations with equal survivor sums).
    pub fn bnt_only() -> Self {
        Self {
            bnt: 1.0,
            mp_taken: 0.0,
            mp_not_taken: 0.0,
            l3: 0.0,
        }
    }
}

/// Estimator configuration (defaults are the paper's reported best
/// trade-off: tolerance 1, 10 k iterations, stop after <5 fruitless
/// starts, at most `m = 2·p` starts).
#[derive(Debug, Clone, PartialEq)]
pub struct EstimatorConfig {
    /// Maximum number of optimization starts; `None` = `2 × predicates`.
    pub max_starts: Option<usize>,
    /// Stop after this many consecutive starts without improvement.
    pub no_improvement_limit: usize,
    /// Local optimizer options.
    pub nelder_mead: NelderMeadOptions,
    /// Counter weights for the objective.
    pub weights: CounterWeights,
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        Self {
            max_starts: None,
            no_improvement_limit: 4,
            // The paper's "absolute tolerance of one" applies to an
            // objective in raw counter units; ours is normalized per
            // counter, so the equivalent tolerance scales down by the
            // counter magnitude. Real (simulated-hardware) counters carry
            // model error of ~1e-2, so a tighter tolerance only burns
            // evaluations wandering inside the noise floor; the evaluation
            // cap bounds the optimization time the progressive loop
            // charges to the query (Section 5.7).
            nelder_mead: NelderMeadOptions {
                ftol_abs: 3e-4,
                max_evaluations: 4_000,
                initial_step_fraction: 0.25,
            },
            weights: CounterWeights::default(),
        }
    }
}

/// Result of one estimation run.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateResult {
    /// Estimated survivor counts `a_1 … a_p` (last pinned to the output).
    pub survivors: Vec<f64>,
    /// Estimated per-predicate selectivities, in evaluation order.
    pub selectivities: Vec<f64>,
    /// Final objective value (0 = counters matched exactly).
    pub objective: f64,
    /// Optimization starts consumed.
    pub starts_used: usize,
    /// Total objective evaluations across all starts.
    pub evaluations: usize,
    /// Search bounds that constrained the run (for diagnostics).
    pub bounds: SearchBounds,
}

/// The Equation-10 objective for a full survivor vector.
fn objective(
    geom: &PlanGeometry,
    sampled: &SampledCounters,
    weights: &CounterWeights,
    survivors: &[f64],
) -> f64 {
    let est = estimate_counters(geom, survivors);
    let rel = |s: u64, e: f64| -> f64 { (s as f64 - e).abs() / (s as f64).max(1.0) };
    let mut cost = weights.bnt * rel(sampled.bnt, est.bnt)
        + weights.mp_taken * rel(sampled.mp_taken, est.mp_taken)
        + weights.mp_not_taken * rel(sampled.mp_not_taken, est.mp_not_taken)
        + weights.l3 * rel(sampled.l3_accesses, est.l3_accesses);
    // Monotonicity penalty: survivors must be non-increasing.
    let mut prev = sampled.n_input as f64;
    for &a in survivors {
        if a > prev {
            cost += 10.0 * (a - prev) / sampled.n_input.max(1) as f64;
        }
        prev = a;
    }
    cost
}

/// Estimate per-predicate selectivities for the currently executing PEO.
///
/// `geom.value_bytes.len()` defines the predicate count; the sampled
/// counters must come from the same interval.
pub fn estimate_selectivities(
    geom: &PlanGeometry,
    sampled: &SampledCounters,
    config: &EstimatorConfig,
) -> EstimateResult {
    let p = geom.predicates();
    assert!(p >= 1, "need at least one predicate");
    assert_eq!(geom.n_input, sampled.n_input, "geometry/sample mismatch");

    let full_bounds = bnt_bounds(p, sampled.n_input, sampled.n_output, sampled.bnt);
    let out = sampled.n_output as f64;

    // One predicate: fully determined by the qualifying-tuple identity.
    if p == 1 {
        let survivors = vec![out];
        let selectivities = survivors_to_selectivities(sampled.n_input, &survivors);
        let objective = objective(geom, sampled, &config.weights, &survivors);
        return EstimateResult {
            survivors,
            selectivities,
            objective,
            starts_used: 0,
            evaluations: 0,
            bounds: full_bounds,
        };
    }

    // Search over a_1..a_{p-1}; the last coordinate is pinned.
    let free_bounds = full_bounds.without_last();
    let dims = free_bounds.dims();
    let null = StartPointGenerator::null_hypothesis(dims, p, sampled.n_input, sampled.n_output);
    let generator = StartPointGenerator::new(free_bounds.clone(), null);

    let max_starts = config.max_starts.unwrap_or(2 * p);
    let mut best_x: Option<Vec<f64>> = None;
    let mut best_value = f64::INFINITY;
    let mut starts_used = 0usize;
    let mut evaluations = 0usize;
    let mut since_improvement = 0usize;

    let mut full = vec![0.0; p];
    for start in generator.take(max_starts) {
        starts_used += 1;
        let result = minimize(
            |x| {
                full[..dims].copy_from_slice(x);
                full[dims] = out;
                objective(geom, sampled, &config.weights, &full)
            },
            &start,
            &free_bounds.lower,
            &free_bounds.upper,
            &config.nelder_mead,
        );
        evaluations += result.evaluations;
        if result.value + 1e-12 < best_value {
            best_value = result.value;
            best_x = Some(result.x);
            since_improvement = 0;
        } else {
            since_improvement += 1;
            if since_improvement >= config.no_improvement_limit {
                break;
            }
        }
    }

    let mut survivors = best_x.expect("at least one start ran");
    survivors.push(out);
    let selectivities = survivors_to_selectivities(sampled.n_input, &survivors);
    EstimateResult {
        survivors,
        selectivities,
        objective: best_value,
        starts_used,
        evaluations,
        bounds: full_bounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popt_cost::estimate::estimate_counters;

    /// Build a synthetic sample by running the *model itself* on known
    /// survivors — the estimator must then invert it (model-consistency).
    fn synthetic_sample(geom: &PlanGeometry, survivors: &[f64]) -> SampledCounters {
        let est = estimate_counters(geom, survivors);
        SampledCounters {
            n_input: geom.n_input,
            n_output: *survivors.last().unwrap() as u64,
            bnt: est.bnt.round() as u64,
            mp_taken: est.mp_taken.round() as u64,
            mp_not_taken: est.mp_not_taken.round() as u64,
            l3_accesses: est.l3_accesses.round() as u64,
        }
    }

    fn tight_config() -> EstimatorConfig {
        EstimatorConfig {
            max_starts: Some(12),
            no_improvement_limit: 6,
            nelder_mead: NelderMeadOptions {
                ftol_abs: 1e-6,
                max_evaluations: 4_000,
                initial_step_fraction: 0.25,
            },
            weights: CounterWeights::default(),
        }
    }

    #[test]
    fn single_predicate_is_exact() {
        let geom = PlanGeometry::uniform_i32(100_000, 1);
        let sampled = synthetic_sample(&geom, &[25_000.0]);
        let r = estimate_selectivities(&geom, &sampled, &tight_config());
        assert_eq!(r.survivors, vec![25_000.0]);
        assert!((r.selectivities[0] - 0.25).abs() < 1e-9);
        assert_eq!(r.starts_used, 0);
    }

    #[test]
    fn two_predicates_recover_planted_selectivities() {
        let geom = PlanGeometry::uniform_i32(1_000_000, 2);
        // p1 = 0.4, p2 = 0.2.
        let sampled = synthetic_sample(&geom, &[400_000.0, 80_000.0]);
        let r = estimate_selectivities(&geom, &sampled, &tight_config());
        assert!(
            (r.selectivities[0] - 0.4).abs() < 0.05,
            "sels = {:?}",
            r.selectivities
        );
        assert!(
            (r.selectivities[1] - 0.2).abs() < 0.05,
            "{:?}",
            r.selectivities
        );
    }

    #[test]
    fn order_asymmetry_is_detected() {
        // [0.2, 0.4] vs [0.4, 0.2]: same output, different counters —
        // the estimator must not confuse the two (Section 4.2's premise).
        let geom = PlanGeometry::uniform_i32(1_000_000, 2);
        let sampled = synthetic_sample(&geom, &[200_000.0, 80_000.0]);
        let r = estimate_selectivities(&geom, &sampled, &tight_config());
        assert!(r.selectivities[0] < 0.3, "sels = {:?}", r.selectivities);
        assert!(r.selectivities[1] > 0.3, "sels = {:?}", r.selectivities);
    }

    #[test]
    fn three_predicates_recover_within_tolerance() {
        let geom = PlanGeometry::uniform_i32(1_000_000, 3);
        // p = [0.7, 0.3, 0.5] -> survivors [700k, 210k, 105k].
        let sampled = synthetic_sample(&geom, &[700_000.0, 210_000.0, 105_000.0]);
        let r = estimate_selectivities(&geom, &sampled, &tight_config());
        for (got, want) in r.selectivities.iter().zip([0.7, 0.3, 0.5]) {
            assert!((got - want).abs() < 0.12, "sels = {:?}", r.selectivities);
        }
    }

    #[test]
    fn estimates_respect_bounds() {
        let geom = PlanGeometry::uniform_i32(100_000, 3);
        let sampled = synthetic_sample(&geom, &[50_000.0, 20_000.0, 10_000.0]);
        let r = estimate_selectivities(&geom, &sampled, &tight_config());
        assert!(r.bounds.contains(&r.survivors), "{:?}", r);
    }

    #[test]
    fn budget_limits_starts() {
        let geom = PlanGeometry::uniform_i32(100_000, 4);
        let sampled = synthetic_sample(&geom, &[80_000.0, 40_000.0, 20_000.0, 10_000.0]);
        let mut cfg = tight_config();
        cfg.max_starts = Some(2);
        cfg.no_improvement_limit = 100;
        let r = estimate_selectivities(&geom, &sampled, &cfg);
        assert!(r.starts_used <= 2);
    }

    #[test]
    fn no_improvement_stops_early() {
        let geom = PlanGeometry::uniform_i32(100_000, 2);
        let sampled = synthetic_sample(&geom, &[50_000.0, 25_000.0]);
        let mut cfg = tight_config();
        cfg.max_starts = Some(50);
        cfg.no_improvement_limit = 2;
        let r = estimate_selectivities(&geom, &sampled, &cfg);
        assert!(r.starts_used < 50, "used {}", r.starts_used);
    }

    #[test]
    fn join_probe_geometry_still_inverts() {
        // A pipeline-shaped plan: cheap select followed by a join filter
        // whose probe dominates the L3 counter. The estimator must invert
        // the probe-aware model just like the plain-scan one — the
        // geometry is an *input*, the search does not care what produced
        // the counters.
        use popt_cost::estimate::ProbeGeometry;
        use popt_cost::join_model::JoinGeometry;
        let mut geom = PlanGeometry::uniform_i32(1_000_000, 2);
        geom.probes = vec![
            None,
            Some(ProbeGeometry {
                relation: JoinGeometry {
                    relation_tuples: 250_000,
                    tuple_bytes: 4,
                    line_bytes: 64,
                    cache_lines: 512 * 1024 / 64,
                },
                upper_cache_bytes: 64.0 * 1024.0,
                clustering: 1.0,
                remote_fraction: 0.0,
            }),
        ];
        // p1 = 0.3, p2 = 0.5.
        let sampled = synthetic_sample(&geom, &[300_000.0, 150_000.0]);
        let r = estimate_selectivities(&geom, &sampled, &tight_config());
        assert!(
            (r.selectivities[0] - 0.3).abs() < 0.05,
            "sels = {:?}",
            r.selectivities
        );
        assert!(
            (r.selectivities[1] - 0.5).abs() < 0.05,
            "sels = {:?}",
            r.selectivities
        );
    }

    #[test]
    fn merged_worker_samples_estimate_like_one_big_sample() {
        // Two workers each sample half the interval; the fused sample
        // must equal the single-core sample of the whole interval, and
        // the estimate over it must recover the same selectivities.
        let whole = PlanGeometry::uniform_i32(1_000_000, 2);
        let half = PlanGeometry::uniform_i32(500_000, 2);
        let per_worker = synthetic_sample(&half, &[200_000.0, 40_000.0]);
        let merged = SampledCounters::merged(&[per_worker, per_worker]).unwrap();
        assert_eq!(merged.n_input, 1_000_000);
        assert_eq!(merged.bnt, 2 * per_worker.bnt);
        assert_eq!(merged.l3_accesses, 2 * per_worker.l3_accesses);
        let r = estimate_selectivities(&whole, &merged, &tight_config());
        assert!(
            (r.selectivities[0] - 0.4).abs() < 0.05,
            "{:?}",
            r.selectivities
        );
        assert!(SampledCounters::merged(&[]).is_none());
    }

    #[test]
    fn bnt_only_weights_still_bound_feasible() {
        // With BNT alone the problem is under-determined, but the result
        // must still respect the exact constraints.
        let geom = PlanGeometry::uniform_i32(1_000_000, 2);
        let sampled = synthetic_sample(&geom, &[400_000.0, 80_000.0]);
        let mut cfg = tight_config();
        cfg.weights = CounterWeights::bnt_only();
        let r = estimate_selectivities(&geom, &sampled, &cfg);
        assert!(r.bounds.contains(&r.survivors));
        // Survivor sum must be close to the sampled BNT.
        let sum: f64 = r.survivors.iter().sum();
        assert!((sum - sampled.bnt as f64).abs() / sampled.bnt as f64 * 100.0 < 5.0);
    }
}
