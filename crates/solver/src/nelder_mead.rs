//! A from-scratch, box-bounded Nelder–Mead downhill simplex [15].
//!
//! The paper evaluated NLopt's algorithm portfolio and chose Nelder–Mead
//! as the local optimizer "because it performs best for our selectivity
//! estimations" (Section 4.2). This implementation uses the standard
//! coefficients (reflection 1, expansion 2, contraction ½, shrink ½),
//! clamps every candidate into the feasible box, and terminates on the
//! paper's criteria: an absolute tolerance between successive optima or a
//! maximum evaluation count (the paper's best configuration: tolerance 1,
//! 10 000 iterations).

/// Termination and step-size options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NelderMeadOptions {
    /// Stop when the simplex's best-worst spread falls below this.
    pub ftol_abs: f64,
    /// Hard cap on objective evaluations.
    pub max_evaluations: usize,
    /// Initial simplex edge length as a fraction of each coordinate's
    /// box width.
    pub initial_step_fraction: f64,
}

impl Default for NelderMeadOptions {
    fn default() -> Self {
        // The values Section 4.2 reports as the best trade-off.
        Self {
            ftol_abs: 1.0,
            max_evaluations: 10_000,
            initial_step_fraction: 0.25,
        }
    }
}

/// Outcome of one minimization run.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizationResult {
    /// Best point found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub value: f64,
    /// Number of objective evaluations consumed.
    pub evaluations: usize,
    /// True if the tolerance criterion fired (false: ran out of budget).
    pub converged: bool,
}

/// Minimize `f` over the box `[lower, upper]`, starting at `start`.
///
/// `start` is clamped into the box. For a zero-dimensional problem the
/// start point is returned unevaluated… except it is evaluated once so the
/// result carries a value.
pub fn minimize(
    mut f: impl FnMut(&[f64]) -> f64,
    start: &[f64],
    lower: &[f64],
    upper: &[f64],
    options: &NelderMeadOptions,
) -> OptimizationResult {
    let dim = start.len();
    assert_eq!(lower.len(), dim, "bounds dimensionality mismatch");
    assert_eq!(upper.len(), dim, "bounds dimensionality mismatch");
    for d in 0..dim {
        assert!(
            lower[d] <= upper[d],
            "empty box in dimension {d}: [{}, {}]",
            lower[d],
            upper[d]
        );
    }
    let clamp = |x: &mut Vec<f64>| {
        for d in 0..dim {
            x[d] = x[d].clamp(lower[d], upper[d]);
        }
    };

    let mut evaluations = 0usize;
    let mut eval = |x: &[f64], evals: &mut usize| -> f64 {
        *evals += 1;
        f(x)
    };

    let mut x0 = start.to_vec();
    clamp(&mut x0);
    if dim == 0 {
        let value = eval(&x0, &mut evaluations);
        return OptimizationResult {
            x: x0,
            value,
            evaluations,
            converged: true,
        };
    }

    // Initial simplex: x0 plus one perturbed point per dimension. If the
    // step would leave the box, step the other way.
    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(dim + 1);
    let v0 = eval(&x0, &mut evaluations);
    simplex.push((x0.clone(), v0));
    for d in 0..dim {
        let width = upper[d] - lower[d];
        let step = if width > 0.0 {
            width * options.initial_step_fraction
        } else {
            0.0
        };
        let mut xi = x0.clone();
        if xi[d] + step <= upper[d] {
            xi[d] += step;
        } else {
            xi[d] -= step;
        }
        clamp(&mut xi);
        let vi = eval(&xi, &mut evaluations);
        simplex.push((xi, vi));
    }

    const ALPHA: f64 = 1.0; // reflection
    const GAMMA: f64 = 2.0; // expansion
    const RHO: f64 = 0.5; // contraction
    const SIGMA: f64 = 0.5; // shrink

    let mut converged = false;
    while evaluations < options.max_evaluations {
        simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("objective returned NaN"));
        let best = simplex[0].1;
        let worst = simplex[dim].1;
        if (worst - best).abs() < options.ftol_abs {
            converged = true;
            break;
        }

        // Centroid of all but the worst vertex.
        let mut centroid = vec![0.0; dim];
        for (x, _) in &simplex[..dim] {
            for d in 0..dim {
                centroid[d] += x[d];
            }
        }
        for c in &mut centroid {
            *c /= dim as f64;
        }

        let worst_x = simplex[dim].0.clone();
        let blend = |t: f64| -> Vec<f64> {
            let mut x: Vec<f64> = (0..dim)
                .map(|d| centroid[d] + t * (centroid[d] - worst_x[d]))
                .collect();
            clamp(&mut x);
            x
        };

        // Reflection.
        let xr = blend(ALPHA);
        let vr = eval(&xr, &mut evaluations);
        if vr < simplex[0].1 {
            // Expansion.
            let xe = blend(GAMMA);
            let ve = eval(&xe, &mut evaluations);
            simplex[dim] = if ve < vr { (xe, ve) } else { (xr, vr) };
            continue;
        }
        if vr < simplex[dim - 1].1 {
            simplex[dim] = (xr, vr);
            continue;
        }
        // Contraction (outside if the reflection improved on the worst,
        // inside otherwise).
        let xc = if vr < simplex[dim].1 {
            blend(RHO)
        } else {
            blend(-RHO)
        };
        let vc = eval(&xc, &mut evaluations);
        if vc < simplex[dim].1.min(vr) {
            simplex[dim] = (xc, vc);
            continue;
        }
        // Shrink towards the best vertex.
        let best_x = simplex[0].0.clone();
        for vertex in simplex.iter_mut().skip(1) {
            for (v, &best) in vertex.0.iter_mut().zip(&best_x) {
                *v = best + SIGMA * (*v - best);
            }
            clamp(&mut vertex.0);
            vertex.1 = eval(&vertex.0, &mut evaluations);
            if evaluations >= options.max_evaluations {
                break;
            }
        }
    }

    simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("objective returned NaN"));
    let (x, value) = simplex.swap_remove(0);
    OptimizationResult {
        x,
        value,
        evaluations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> NelderMeadOptions {
        NelderMeadOptions {
            ftol_abs: 1e-9,
            max_evaluations: 20_000,
            initial_step_fraction: 0.25,
        }
    }

    #[test]
    fn minimizes_quadratic_bowl() {
        let r = minimize(
            |x| (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2),
            &[0.0, 0.0],
            &[-10.0, -10.0],
            &[10.0, 10.0],
            &opts(),
        );
        assert!(r.converged);
        assert!((r.x[0] - 3.0).abs() < 1e-3, "{:?}", r.x);
        assert!((r.x[1] + 1.0).abs() < 1e-3, "{:?}", r.x);
    }

    #[test]
    fn respects_box_bounds() {
        // Unconstrained minimum at (-5, -5) lies outside the box.
        let r = minimize(
            |x| (x[0] + 5.0).powi(2) + (x[1] + 5.0).powi(2),
            &[5.0, 5.0],
            &[0.0, 0.0],
            &[10.0, 10.0],
            &opts(),
        );
        assert!(r.x[0] >= 0.0 && r.x[1] >= 0.0);
        assert!(r.x[0] < 1e-3 && r.x[1] < 1e-3, "{:?}", r.x);
    }

    #[test]
    fn rosenbrock_two_d() {
        let r = minimize(
            |x| {
                let a = 1.0 - x[0];
                let b = x[1] - x[0] * x[0];
                a * a + 100.0 * b * b
            },
            &[-1.2, 1.0],
            &[-5.0, -5.0],
            &[5.0, 5.0],
            &opts(),
        );
        assert!((r.x[0] - 1.0).abs() < 1e-2, "{:?}", r);
        assert!((r.x[1] - 1.0).abs() < 1e-2, "{:?}", r);
    }

    #[test]
    fn evaluation_budget_is_respected() {
        let budget = 50;
        let mut calls = 0usize;
        let r = minimize(
            |x| {
                // Count calls through a side channel for verification.
                x.iter().map(|v| v * v).sum::<f64>()
            },
            &[4.0, 4.0, 4.0, 4.0],
            &[-10.0; 4],
            &[10.0; 4],
            &NelderMeadOptions {
                ftol_abs: 0.0,
                max_evaluations: budget,
                initial_step_fraction: 0.25,
            },
        );
        calls += r.evaluations;
        assert!(calls <= budget + 5, "calls = {calls}"); // shrink may overshoot slightly
        assert!(!r.converged);
    }

    #[test]
    fn degenerate_box_dimension_is_held() {
        // Second coordinate is pinned: lower == upper.
        let r = minimize(
            |x| (x[0] - 2.0).powi(2) + (x[1] - 9.0).powi(2),
            &[0.0, 5.0],
            &[-10.0, 5.0],
            &[10.0, 5.0],
            &opts(),
        );
        assert_eq!(r.x[1], 5.0);
        assert!((r.x[0] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn one_dimensional_problem() {
        let r = minimize(|x| (x[0] - 0.25).powi(2), &[0.9], &[0.0], &[1.0], &opts());
        assert!((r.x[0] - 0.25).abs() < 1e-4);
    }

    #[test]
    fn absolute_tolerance_terminates_early() {
        let tight = minimize(
            |x| x[0] * x[0],
            &[100.0],
            &[-1000.0],
            &[1000.0],
            &NelderMeadOptions {
                ftol_abs: 1.0,
                max_evaluations: 10_000,
                initial_step_fraction: 0.25,
            },
        );
        assert!(tight.converged);
        // With ftol 1.0 we stop well before machine precision.
        assert!(tight.evaluations < 200);
    }
}
