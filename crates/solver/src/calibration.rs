//! Snapshot/restore of a target's runtime calibration state.
//!
//! The progressive pipeline target learns each join probe's *clustering*
//! (co-clustered vs. random dimension access, Section 5.5) from sampled
//! counters while the query runs. That knowledge is a property of the
//! *workload template*, not of one execution: a repeated query probes the
//! same dimensions with the same foreign keys, so a serving layer can
//! snapshot the converged calibration when a query finishes and seed the
//! next instance of the same template with it — skipping the measurement
//! probes and the textbook-pessimistic random prior entirely.
//!
//! The snapshot lives in the solver crate because it is estimator-model
//! state (the clustering values parameterize the probe geometry the
//! Nelder–Mead objective is fitted against), not executor state.

/// A target's learned per-stage calibration, detached from the target so
/// it can outlive the query that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationSnapshot {
    /// Per plan-stage probe clustering estimate (`1.0` = assume uniform
    /// random, the cold prior; meaningless for non-probe stages).
    pub clustering: Vec<f64>,
    /// Whether the stage's clustering was ever calibrated from a sample.
    pub measured: Vec<bool>,
    /// Literal-free structural keys of the stages the calibration was
    /// learned on (one per stage), for targets that can describe their
    /// stages beyond a count. Empty for legacy snapshots: those are
    /// matched by arity alone.
    pub stage_keys: Vec<u64>,
}

impl CalibrationSnapshot {
    /// The cold-start snapshot for `stages` stages: random-prior
    /// clustering, nothing measured.
    pub fn cold(stages: usize) -> Self {
        Self {
            clustering: vec![1.0; stages],
            measured: vec![false; stages],
            stage_keys: Vec::new(),
        }
    }

    /// Build a snapshot from per-stage state; the vectors must be of
    /// equal length and clustering values are clamped into `[0, 1]`.
    pub fn new(clustering: Vec<f64>, measured: Vec<bool>) -> Self {
        assert_eq!(
            clustering.len(),
            measured.len(),
            "one measured flag per stage"
        );
        Self {
            clustering: clustering.into_iter().map(|c| c.clamp(0.0, 1.0)).collect(),
            measured,
            stage_keys: Vec::new(),
        }
    }

    /// [`CalibrationSnapshot::new`] with per-stage structural keys, so a
    /// restore can verify it is seeding the same stage *shapes* the
    /// calibration was learned on — not merely the same stage count.
    pub fn keyed(clustering: Vec<f64>, measured: Vec<bool>, stage_keys: Vec<u64>) -> Self {
        assert_eq!(
            clustering.len(),
            stage_keys.len(),
            "one structural key per stage"
        );
        let mut snapshot = Self::new(clustering, measured);
        snapshot.stage_keys = stage_keys;
        snapshot
    }

    /// Number of plan stages the snapshot describes.
    pub fn stages(&self) -> usize {
        self.clustering.len()
    }

    /// Whether the snapshot fits a target with `stages` plan stages — the
    /// guard a restore must pass before overwriting a target's beliefs.
    /// Both vectors must have the right arity (the fields are public, so
    /// a hand-built or mutated snapshot can be lopsided; restoring one
    /// must degrade to a cold start, never panic downstream).
    pub fn matches(&self, stages: usize) -> bool {
        self.clustering.len() == stages && self.measured.len() == stages
    }

    /// Whether the snapshot fits a target whose stages carry the given
    /// structural keys. A keyed snapshot must match them exactly; a
    /// legacy (unkeyed) snapshot falls back to the arity check, so old
    /// producers keep restoring into key-aware targets.
    pub fn matches_keys(&self, keys: &[u64]) -> bool {
        if self.stage_keys.is_empty() {
            return self.matches(keys.len());
        }
        self.matches(keys.len()) && self.stage_keys == keys
    }

    /// How many stages carry a measured (not prior) clustering.
    pub fn observed(&self) -> usize {
        self.measured.iter().filter(|&&m| m).count()
    }

    /// Whether nothing was ever measured (equivalent to
    /// [`CalibrationSnapshot::cold`] of the same arity).
    pub fn is_cold(&self) -> bool {
        self.observed() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_snapshot_is_random_prior() {
        let s = CalibrationSnapshot::cold(3);
        assert_eq!(s.stages(), 3);
        assert!(s.is_cold());
        assert_eq!(s.observed(), 0);
        assert!(s.clustering.iter().all(|&c| c == 1.0));
        assert!(s.matches(3));
        assert!(!s.matches(2));
    }

    #[test]
    fn lopsided_snapshot_matches_nothing() {
        // Public fields allow a mutated, inconsistent snapshot; matches()
        // must reject it for every arity so restores degrade to cold.
        let mut s = CalibrationSnapshot::cold(2);
        s.measured = vec![];
        assert!(!s.matches(2));
        assert!(!s.matches(0));
    }

    #[test]
    fn new_clamps_clustering_into_unit_interval() {
        let s = CalibrationSnapshot::new(vec![-0.5, 0.25, 7.0], vec![true, true, false]);
        assert_eq!(s.clustering, vec![0.0, 0.25, 1.0]);
        assert_eq!(s.observed(), 2);
        assert!(!s.is_cold());
    }

    #[test]
    #[should_panic(expected = "one measured flag per stage")]
    fn mismatched_lengths_are_rejected() {
        let _ = CalibrationSnapshot::new(vec![0.5], vec![true, false]);
    }

    #[test]
    fn keyed_snapshots_match_on_structure_not_arity() {
        let s = CalibrationSnapshot::keyed(vec![0.5, 1.0], vec![true, false], vec![7, 9]);
        assert!(s.matches_keys(&[7, 9]));
        assert!(!s.matches_keys(&[9, 7]), "same arity, different structure");
        assert!(!s.matches_keys(&[7]));
        // Legacy snapshots (no keys) keep matching by arity alone.
        let legacy = CalibrationSnapshot::new(vec![0.5, 1.0], vec![true, false]);
        assert!(legacy.matches_keys(&[1, 2]));
        assert!(!legacy.matches_keys(&[1]));
    }

    #[test]
    #[should_panic(expected = "one structural key per stage")]
    fn keyed_rejects_mismatched_key_arity() {
        let _ = CalibrationSnapshot::keyed(vec![0.5], vec![true], vec![1, 2]);
    }
}
