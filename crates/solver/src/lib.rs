//! # popt-solver — selectivity inference from performance counters
//!
//! Implements Section 4.1–4.3 of the paper: given one sampled counter
//! vector for a whole predicate evaluation order, recover the *individual*
//! predicate selectivities.
//!
//! * [`bounds`] — search-space restriction via the upper/lower tuple
//!   bounds (Equations 6–7) and the upper/lower branches-not-taken bounds
//!   (Equations 8–9), reproducing the worked example of Figure 7;
//! * [`nelder_mead`] — a from-scratch, box-bounded Nelder–Mead simplex
//!   (the algorithm the paper selects out of NLopt's portfolio), with the
//!   paper's termination criteria (absolute tolerance and a maximum
//!   iteration count);
//! * [`start_points`] — the multi-start schedule of Section 4.3: bounding
//!   box vertices, the even-split null hypothesis, then centroids of the
//!   largest unexplored subspace (Figure 9);
//! * [`estimator`] — the outer loop (Section 4.4's inner sequence):
//!   repeatedly start Nelder–Mead on the Equation-10 objective until no
//!   better optimum appears for `n` rounds or `m = 2·p` rounds elapsed;
//! * [`calibration`] — snapshot/restore of the runtime-learned probe
//!   clustering, so a serving layer can carry a converged calibration
//!   from one execution of a query template to the next.

pub mod bounds;
pub mod calibration;
pub mod estimator;
pub mod nelder_mead;
pub mod start_points;

pub use bounds::SearchBounds;
pub use calibration::CalibrationSnapshot;
pub use estimator::{
    estimate_selectivities, CounterWeights, EstimateResult, EstimatorConfig, SampledCounters,
};
pub use nelder_mead::{minimize, NelderMeadOptions, OptimizationResult};
pub use start_points::StartPointGenerator;
