//! Search-space restriction (Section 4.1, Figure 7).
//!
//! The search space for a query with `p` predicates is the vector of
//! per-predicate survivor counts `a_1 … a_p` ("accesses to col_1 … col_p"
//! in the paper's indexing), which must satisfy:
//!
//! * **tuple bounds** (Eq. 6–7): `tupsout ≤ a_j ≤ tupsin`, with
//!   `a_p = tupsout` exactly (the last survivor count *is* the output);
//! * **monotonicity**: `a_j ≤ a_{j-1}` (a predicate can only shrink the
//!   stream);
//! * **BNT bounds** (Eq. 8–9): the sampled branches-not-taken total equals
//!   `Σ a_j` exactly, so each coordinate is bracketed by distributing that
//!   budget extremally.
//!
//! The printed formulas in the paper contain index typos; the derivations
//! here follow the stated intuition ("assign accesses such that p_i can
//! access the maximum number of tuples…") and reproduce the paper's worked
//! example — input 100, output 10, BNT 210 → bounds `[67,50,10,10]` to
//! `[100,95,66,10]` — exactly (see tests).

/// Per-coordinate interval bounds over the survivor vector.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchBounds {
    /// Inclusive lower bound per predicate position.
    pub lower: Vec<f64>,
    /// Inclusive upper bound per predicate position.
    pub upper: Vec<f64>,
}

impl SearchBounds {
    /// Number of coordinates.
    pub fn dims(&self) -> usize {
        self.lower.len()
    }

    /// Intersect with another set of bounds of the same dimensionality.
    pub fn intersect(&self, other: &SearchBounds) -> SearchBounds {
        assert_eq!(self.dims(), other.dims());
        SearchBounds {
            lower: self
                .lower
                .iter()
                .zip(&other.lower)
                .map(|(&a, &b)| a.max(b))
                .collect(),
            upper: self
                .upper
                .iter()
                .zip(&other.upper)
                .map(|(&a, &b)| a.min(b))
                .collect(),
        }
    }

    /// Whether `point` lies within the bounds (inclusive).
    pub fn contains(&self, point: &[f64]) -> bool {
        point.len() == self.dims()
            && point
                .iter()
                .zip(self.lower.iter().zip(&self.upper))
                .all(|(&x, (&lo, &hi))| x >= lo - 1e-9 && x <= hi + 1e-9)
    }

    /// Clamp `point` into the bounds, coordinate-wise.
    pub fn clamp(&self, point: &mut [f64]) {
        for (x, (lo, hi)) in point.iter_mut().zip(self.lower.iter().zip(&self.upper)) {
            *x = x.clamp(*lo, *hi);
        }
    }

    /// Integer-rounded bounds (conservative inward rounding: lower ceils,
    /// upper floors) — the form the paper's Figure 7 example prints.
    pub fn rounded(&self) -> (Vec<u64>, Vec<u64>) {
        let lo = self
            .lower
            .iter()
            .map(|x| x.ceil().max(0.0) as u64)
            .collect();
        let hi = self
            .upper
            .iter()
            .map(|x| x.floor().max(0.0) as u64)
            .collect();
        (lo, hi)
    }

    /// Drop the last coordinate (used when the final survivor count is
    /// pinned to the output cardinality and excluded from the search).
    pub fn without_last(&self) -> SearchBounds {
        assert!(self.dims() >= 1);
        SearchBounds {
            lower: self.lower[..self.dims() - 1].to_vec(),
            upper: self.upper[..self.dims() - 1].to_vec(),
        }
    }
}

/// Equations 6–7: bounds from input/output cardinality alone.
pub fn tuple_bounds(predicates: usize, tups_in: u64, tups_out: u64) -> SearchBounds {
    assert!(predicates >= 1, "need at least one predicate");
    assert!(tups_out <= tups_in, "output exceeds input");
    let mut lower = vec![tups_out as f64; predicates];
    let mut upper = vec![tups_in as f64; predicates];
    // The last predicate's survivors are exactly the output tuples.
    lower[predicates - 1] = tups_out as f64;
    upper[predicates - 1] = tups_out as f64;
    SearchBounds { lower, upper }
}

/// Equations 8–9: bounds additionally constrained by the sampled
/// branches-not-taken total (`Σ a_j = bnt_sampled`), intersected with the
/// tuple bounds.
pub fn bnt_bounds(
    predicates: usize,
    tups_in: u64,
    tups_out: u64,
    bnt_sampled: u64,
) -> SearchBounds {
    assert!(predicates >= 1, "need at least one predicate");
    assert!(tups_out <= tups_in, "output exceeds input");
    let n = predicates;
    let n_f = |x: u64| x as f64;
    let (inp, out, bnt) = (n_f(tups_in), n_f(tups_out), n_f(bnt_sampled));

    let mut upper = Vec::with_capacity(n);
    let mut lower = Vec::with_capacity(n);
    for j in 0..n {
        if j == n - 1 {
            upper.push(out);
            lower.push(out);
            continue;
        }
        // Upper: maximize a_j by making a_0..a_j all equal to it
        // (monotonicity forbids anything larger before it) and the
        // remaining positions minimal (= out).
        let max_aj = (bnt - out * (n - 1 - j) as f64) / (j + 1) as f64;
        upper.push(max_aj.min(inp).max(out));
        // Lower: minimize a_j by making everything before it maximal
        // (= in) and everything after (except the pinned last) equal to
        // a_j itself.
        let remaining = n - 1 - j; // positions j..n-2 inclusive plus pinned last
        let min_aj = (bnt - out - j as f64 * inp) / remaining as f64;
        lower.push(min_aj.max(out).min(inp));
    }
    let b = SearchBounds { lower, upper };
    b.intersect(&tuple_bounds(predicates, tups_in, tups_out))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example of Figure 7: 4 predicates, 100 in, 10 out,
    /// accesses [80, 70, 50, 10], sampled BNT = 210.
    #[test]
    fn figure7_example_bounds() {
        let b = bnt_bounds(4, 100, 10, 210);
        let (lo, hi) = b.rounded();
        assert_eq!(lo, vec![67, 50, 10, 10]);
        assert_eq!(hi, vec![100, 95, 66, 10]);
    }

    #[test]
    fn figure7_true_query_is_inside() {
        let b = bnt_bounds(4, 100, 10, 210);
        assert!(b.contains(&[80.0, 70.0, 50.0, 10.0]));
    }

    #[test]
    fn tuple_bounds_pin_last_position() {
        let b = tuple_bounds(3, 1000, 50);
        assert_eq!(b.lower, vec![50.0, 50.0, 50.0]);
        assert_eq!(b.upper, vec![1000.0, 1000.0, 50.0]);
    }

    #[test]
    fn bounds_are_consistent() {
        for bnt in [120u64, 210, 300, 390] {
            let b = bnt_bounds(4, 100, 10, bnt);
            for j in 0..4 {
                assert!(b.lower[j] <= b.upper[j] + 1e-9, "bnt={bnt} j={j}: {:?}", b);
            }
        }
    }

    #[test]
    fn single_predicate_is_fully_determined() {
        let b = bnt_bounds(1, 100, 30, 30);
        assert_eq!(b.lower, vec![30.0]);
        assert_eq!(b.upper, vec![30.0]);
    }

    #[test]
    fn bnt_budget_tightens_tuple_bounds() {
        let t = tuple_bounds(4, 100, 10);
        let b = bnt_bounds(4, 100, 10, 210);
        for j in 0..3 {
            assert!(b.lower[j] >= t.lower[j]);
            assert!(b.upper[j] <= t.upper[j]);
        }
        // And strictly so for at least one coordinate.
        assert!(b.lower[0] > t.lower[0]);
    }

    #[test]
    fn clamp_and_contains_agree() {
        let b = bnt_bounds(4, 100, 10, 210);
        let mut p = vec![0.0, 200.0, 55.0, 10.0];
        assert!(!b.contains(&p));
        b.clamp(&mut p);
        assert!(b.contains(&p));
    }

    #[test]
    fn intersect_takes_tighter_side() {
        let a = SearchBounds {
            lower: vec![0.0, 5.0],
            upper: vec![10.0, 10.0],
        };
        let c = SearchBounds {
            lower: vec![2.0, 0.0],
            upper: vec![8.0, 20.0],
        };
        let i = a.intersect(&c);
        assert_eq!(i.lower, vec![2.0, 5.0]);
        assert_eq!(i.upper, vec![8.0, 10.0]);
    }

    #[test]
    fn without_last_drops_pinned_coordinate() {
        let b = bnt_bounds(4, 100, 10, 210);
        let f = b.without_last();
        assert_eq!(f.dims(), 3);
        assert_eq!(f.upper[2], b.upper[2]);
    }

    #[test]
    fn maximal_bnt_forces_everything_to_input() {
        // If BNT = p*in ... all predicates pass everything (out == in).
        let b = bnt_bounds(3, 100, 100, 300);
        let (lo, hi) = b.rounded();
        assert_eq!(lo, vec![100, 100, 100]);
        assert_eq!(hi, vec![100, 100, 100]);
    }
}
