//! Start-point selection for the multi-start optimization (Section 4.3,
//! Figure 9).
//!
//! The counter system is under-determined (fewer counters than
//! predicates), so a single Nelder–Mead run may land in a local optimum.
//! The paper therefore runs the optimizer from a deterministic sequence of
//! start points:
//!
//! 1. the **vertices** of the (restricted) search box — extreme skew
//!    hypotheses;
//! 2. the **null hypothesis**: the overall selectivity distributes evenly
//!    over the predicates; this point splits the box into `2^d` subspaces;
//! 3. repeatedly, the **centroid of the largest unexplored subspace**,
//!    which is then split at its centroid in turn — always probing the
//!    biggest unseen region next.

use crate::bounds::SearchBounds;

#[derive(Debug, Clone)]
struct BoxRegion {
    lower: Vec<f64>,
    upper: Vec<f64>,
}

impl BoxRegion {
    fn volume(&self) -> f64 {
        // Globally pinned (zero-width) dimensions contribute a neutral
        // factor so they do not zero out the comparison between siblings.
        self.lower
            .iter()
            .zip(&self.upper)
            .map(|(&lo, &hi)| if hi > lo { hi - lo } else { 1.0 })
            .product()
    }

    fn centroid(&self) -> Vec<f64> {
        self.lower
            .iter()
            .zip(&self.upper)
            .map(|(&lo, &hi)| 0.5 * (lo + hi))
            .collect()
    }

    /// Split at `point` into up to `2^d` children. Dimensions where the
    /// point is not strictly interior (including pinned, zero-width
    /// dimensions) are left unsplit rather than producing degenerate
    /// slabs.
    fn split_at(&self, point: &[f64]) -> Vec<BoxRegion> {
        let d = self.lower.len();
        let mut out = vec![BoxRegion {
            lower: Vec::with_capacity(d),
            upper: Vec::with_capacity(d),
        }];
        for ((&lo, &hi), &p) in self.lower.iter().zip(&self.upper).zip(point) {
            let intervals: &[(f64, f64)] = if p > lo && p < hi {
                &[(lo, p), (p, hi)]
            } else {
                &[(lo, hi)]
            };
            let mut next = Vec::with_capacity(out.len() * intervals.len());
            for r in &out {
                for &(ilo, ihi) in intervals {
                    let mut lower = r.lower.clone();
                    let mut upper = r.upper.clone();
                    lower.push(ilo);
                    upper.push(ihi);
                    next.push(BoxRegion { lower, upper });
                }
            }
            out = next;
        }
        out
    }
}

/// Phase of the generator, exposed for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    NullHypothesis,
    Vertices(usize),
    Centroids,
}

/// Deterministic, endless iterator over start points inside `bounds`.
///
/// Yield order: null hypothesis first (it is the best single prior and
/// seeds the subspace decomposition), then box vertices in binary-code
/// order, then largest-subspace centroids forever.
#[derive(Debug, Clone)]
pub struct StartPointGenerator {
    bounds: SearchBounds,
    null_point: Vec<f64>,
    phase: Phase,
    regions: Vec<BoxRegion>,
    vertex_cap: usize,
}

impl StartPointGenerator {
    /// Cap on the number of vertex start points (beyond ~2^4 they stop
    /// paying for themselves and the paper's `m = 2·p` budget would never
    /// reach the centroid phase).
    pub const VERTEX_CAP: usize = 16;

    /// Create a generator over `bounds` with the given null-hypothesis
    /// point (clamped into the bounds).
    pub fn new(bounds: SearchBounds, mut null_point: Vec<f64>) -> Self {
        assert_eq!(bounds.dims(), null_point.len(), "dimensionality mismatch");
        bounds.clamp(&mut null_point);
        let root = BoxRegion {
            lower: bounds.lower.clone(),
            upper: bounds.upper.clone(),
        };
        Self {
            bounds,
            null_point,
            phase: Phase::NullHypothesis,
            regions: vec![root],
            vertex_cap: Self::VERTEX_CAP,
        }
    }

    /// Construct the even-split null hypothesis for a selection with
    /// `tups_in` inputs and `tups_out` outputs over `dims` searched
    /// predicate positions (of `predicates` total): every predicate gets
    /// selectivity `(out/in)^(1/p)`, so survivor `a_j = in · q^(j+1)`.
    pub fn null_hypothesis(
        dims: usize,
        predicates: usize,
        tups_in: u64,
        tups_out: u64,
    ) -> Vec<f64> {
        assert!(dims <= predicates);
        let n = tups_in as f64;
        if n <= 0.0 || predicates == 0 {
            return vec![0.0; dims];
        }
        let overall = (tups_out as f64 / n).clamp(0.0, 1.0);
        let q = overall.powf(1.0 / predicates as f64);
        (0..dims).map(|j| n * q.powi(j as i32 + 1)).collect()
    }

    fn pop_largest_region(&mut self) -> Option<BoxRegion> {
        if self.regions.is_empty() {
            return None;
        }
        let mut best = 0;
        let mut best_vol = f64::MIN;
        for (i, r) in self.regions.iter().enumerate() {
            let v = r.volume();
            if v > best_vol {
                best_vol = v;
                best = i;
            }
        }
        Some(self.regions.swap_remove(best))
    }

    fn vertex(&self, code: usize) -> Vec<f64> {
        (0..self.bounds.dims())
            .map(|i| {
                if code & (1 << i) == 0 {
                    self.bounds.lower[i]
                } else {
                    self.bounds.upper[i]
                }
            })
            .collect()
    }
}

impl Iterator for StartPointGenerator {
    type Item = Vec<f64>;

    fn next(&mut self) -> Option<Vec<f64>> {
        let dims = self.bounds.dims();
        if dims == 0 {
            return Some(Vec::new());
        }
        loop {
            match self.phase {
                Phase::NullHypothesis => {
                    self.phase = Phase::Vertices(0);
                    // Seed the subspace decomposition at the null point.
                    let root = self.pop_largest_region().expect("root region");
                    self.regions.extend(root.split_at(&self.null_point));
                    return Some(self.null_point.clone());
                }
                Phase::Vertices(i) => {
                    let total = (1usize << dims.min(20)).min(self.vertex_cap);
                    if i >= total {
                        self.phase = Phase::Centroids;
                        continue;
                    }
                    self.phase = Phase::Vertices(i + 1);
                    // Emit opposite corners first: 00..0, 11..1, then the
                    // remaining binary codes.
                    let code = match i {
                        0 => 0,
                        1 => (1 << dims) - 1,
                        k => k - 1,
                    };
                    let v = self.vertex(code);
                    // Skip duplicates of the first two specials.
                    if i >= 2 && (code == 0 || code == (1 << dims) - 1) {
                        continue;
                    }
                    return Some(v);
                }
                Phase::Centroids => {
                    let region = self.pop_largest_region()?;
                    let c = region.centroid();
                    self.regions.extend(region.split_at(&c));
                    return Some(c);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> SearchBounds {
        SearchBounds {
            lower: vec![0.0, 0.0],
            upper: vec![100.0, 100.0],
        }
    }

    #[test]
    fn first_point_is_null_hypothesis() {
        let g = StartPointGenerator::new(unit_square(), vec![50.0, 25.0]);
        let first = g.clone().next().unwrap();
        assert_eq!(first, vec![50.0, 25.0]);
    }

    #[test]
    fn null_hypothesis_is_even_split() {
        // overall selectivity 25% over 2 predicates: q = 0.5.
        let p = StartPointGenerator::null_hypothesis(2, 2, 100, 25);
        assert!((p[0] - 50.0).abs() < 1e-9, "{p:?}");
        assert!((p[1] - 25.0).abs() < 1e-9, "{p:?}");
    }

    #[test]
    fn vertices_follow_null() {
        let pts: Vec<_> = StartPointGenerator::new(unit_square(), vec![25.0, 25.0])
            .take(6)
            .collect();
        assert_eq!(pts[1], vec![0.0, 0.0]);
        assert_eq!(pts[2], vec![100.0, 100.0]);
        // Remaining two corners in some deterministic order.
        assert!(pts[3..5].contains(&vec![100.0, 0.0]));
        assert!(pts[3..5].contains(&vec![0.0, 100.0]));
    }

    #[test]
    fn centroid_phase_explores_largest_subspace_first() {
        // Null point at (25, 25) splits 100×100 into quadrants of areas
        // 625, 1875, 1875, 5625: the first centroid is that of the
        // 75×75 box: (62.5, 62.5) — the "largest unseen part" rule of
        // Figure 9.
        let pts: Vec<_> = StartPointGenerator::new(unit_square(), vec![25.0, 25.0])
            .take(6)
            .collect();
        // pts[0] = null, pts[1..=4] = the four vertices, pts[5] = first
        // centroid.
        assert_eq!(pts[5], vec![62.5, 62.5]);
    }

    #[test]
    fn all_points_lie_within_bounds() {
        let b = SearchBounds {
            lower: vec![10.0, 20.0, 5.0],
            upper: vec![90.0, 40.0, 5.0],
        };
        let g = StartPointGenerator::new(b.clone(), vec![50.0, 30.0, 5.0]);
        for p in g.take(40) {
            assert!(b.contains(&p), "{p:?} outside bounds");
        }
    }

    #[test]
    fn generator_is_endless() {
        let g = StartPointGenerator::new(unit_square(), vec![50.0, 50.0]);
        assert_eq!(g.take(100).count(), 100);
    }

    #[test]
    fn degenerate_dimension_is_handled() {
        // One pinned coordinate: boxes are 1-D slabs.
        let b = SearchBounds {
            lower: vec![0.0, 7.0],
            upper: vec![100.0, 7.0],
        };
        let g = StartPointGenerator::new(b.clone(), vec![30.0, 7.0]);
        let pts: Vec<_> = g.take(10).collect();
        assert_eq!(pts.len(), 10);
        for p in &pts {
            assert_eq!(p[1], 7.0);
            assert!(b.contains(p));
        }
    }

    #[test]
    fn null_point_outside_bounds_is_clamped() {
        let g = StartPointGenerator::new(unit_square(), vec![500.0, -3.0]);
        let first = g.clone().next().unwrap();
        assert_eq!(first, vec![100.0, 0.0]);
    }
}
