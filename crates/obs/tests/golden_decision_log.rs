//! Golden-file test for the `explain` decision-log renderer.
//!
//! The decision log is grep-surface: CI smokes, the `trace` figure, and
//! humans diffing two runs all rely on its exact shape. This test pins,
//! against a committed golden file:
//!
//! * the sort key `(query, cycles, lane, ordinal)` — records are fed in
//!   deliberately scrambled, cross-query order, with same-cycle ties
//!   that only the lane and then the ordinal break;
//! * that morsel claims (execution, not decisions) are dropped;
//! * one rendered line per decision kind, including optional-argument
//!   omission (`reopt_round` without a proposal, `cache_lookup` miss
//!   without an order) and every `Arg` shape — unsigned, signed
//!   (negative), fixed-point floats, bools, orders, shares, and
//!   selectivity vectors;
//! * the *escaping contract*: free-form labels render **verbatim** —
//!   spaces, quotes, backslashes, and non-ASCII pass through unescaped,
//!   because the log is for human eyes, not for parsing. Anything that
//!   needs quoting belongs in the Chrome-trace export, which escapes.
//!
//! If a renderer change is intentional, regenerate with the command in
//! the assertion message and review the diff like any golden update.

use popt_obs::{decision_log, Stamp, TraceEvent, TraceRecord};

fn rec(query: usize, lane: usize, cycles: u64, ordinal: u64, event: TraceEvent) -> TraceRecord {
    TraceRecord {
        query,
        stamp: Stamp {
            lane,
            cycles,
            ordinal,
        },
        event,
    }
}

/// Every decision kind, two queries, scrambled input order, same-cycle
/// lane and ordinal ties, and one morsel claim that must not render.
fn fixture() -> Vec<TraceRecord> {
    vec![
        // q1 first in input: the log must still sort q0's block first.
        rec(
            1,
            2,
            9_000,
            1,
            TraceEvent::Complete {
                qualified: 7,
                sum: 42,
                morsels: 3,
                wall_cycles: 9_000,
            },
        ),
        // Execution, not a decision: must be dropped.
        rec(
            0,
            1,
            250,
            9,
            TraceEvent::MorselClaim {
                socket: 0,
                start_row: 0,
                rows: 1_024,
                start_cycles: 150,
                cycles: 100,
                trial: false,
                epoch: 0,
            },
        ),
        rec(
            0,
            1,
            900,
            3,
            TraceEvent::TrialAccept {
                socket: 0,
                order: vec![2, 0, 1],
                baseline_cpt: 3.5,
                trial_cpt: 2.25,
                epoch: 1,
            },
        ),
        // Verbatim-label pin: spaces, quotes, a backslash, non-ASCII.
        rec(
            1,
            0,
            5,
            0,
            TraceEvent::Admit {
                label: "probe \"fast\\path\" θ".to_string(),
                priority: "low",
                arrival_cycles: 5,
            },
        ),
        // Same cycles (100) and lane (1) as the reopt round below:
        // only the ordinal orders these two.
        rec(
            0,
            1,
            100,
            1,
            TraceEvent::TrialLease {
                socket: 0,
                order: vec![1, 0, 2],
                baseline_cpt: 3.5,
            },
        ),
        rec(
            0,
            1,
            100,
            0,
            TraceEvent::ReoptRound {
                socket: 0,
                round: 1,
                selectivities: vec![0.25, 0.5],
                fit_error: 0.25,
                proposed: Some(vec![1, 0, 2]),
            },
        ),
        rec(
            0,
            0,
            0,
            0,
            TraceEvent::Admit {
                label: "lineup \"mem\"".to_string(),
                priority: "high",
                arrival_cycles: 0,
            },
        ),
        rec(
            0,
            0,
            0,
            1,
            TraceEvent::SocketHome {
                socket: 0,
                footprint_bytes: 1 << 20,
            },
        ),
        // Miss: the optional order argument must be omitted entirely.
        rec(
            0,
            0,
            0,
            2,
            TraceEvent::CacheLookup {
                hit: false,
                mid_run: false,
                order: None,
            },
        ),
        rec(
            0,
            0,
            50,
            3,
            TraceEvent::LlcRepartition {
                scope: "batch",
                mode: "shared",
                shares: vec![12, 4],
            },
        ),
        rec(
            0,
            1,
            400,
            2,
            TraceEvent::TrialRevert {
                socket: 0,
                order: vec![1, 0, 2],
                baseline_cpt: 3.5,
                trial_cpt: 4.75,
            },
        ),
        // Same cycles (100) as the two lane-1 records above but lane 0:
        // the lane breaks the tie before the ordinal does.
        rec(
            0,
            0,
            100,
            4,
            TraceEvent::OrderPublish {
                socket: 0,
                order: vec![0, 1, 2],
                epoch: 0,
                warm_seed: true,
            },
        ),
        rec(
            0,
            0,
            1_000,
            5,
            TraceEvent::CacheRecord {
                warm: true,
                order: vec![2, 0, 1],
                diverged: false,
                evicted: false,
                streak_reset: false,
            },
        ),
        // Negative sum: pins signed-argument rendering.
        rec(
            0,
            0,
            1_200,
            6,
            TraceEvent::Complete {
                qualified: 512,
                sum: -3_072,
                morsels: 16,
                wall_cycles: 1_200,
            },
        ),
        // Confirmed incumbent: `proposed` must be omitted.
        rec(
            1,
            1,
            30,
            0,
            TraceEvent::ReoptRound {
                socket: 1,
                round: 2,
                selectivities: vec![1.0 / 3.0, 2.0 / 3.0, 1.0],
                fit_error: 0.01,
                proposed: None,
            },
        ),
        rec(
            1,
            2,
            40,
            0,
            TraceEvent::CacheLookup {
                hit: true,
                mid_run: true,
                order: Some(vec![2, 0, 1]),
            },
        ),
    ]
}

#[test]
fn decision_log_matches_golden() {
    let rendered = decision_log(&fixture());
    if std::env::var_os("POPT_BLESS").is_some() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/decision_log.golden");
        std::fs::write(path, &rendered).expect("golden path is writable");
        return;
    }
    let golden = include_str!("decision_log.golden");
    assert_eq!(
        rendered, golden,
        "decision log drifted from tests/decision_log.golden; if the change \
         is intentional, regenerate with `POPT_BLESS=1 cargo test -p popt-obs \
         --test golden_decision_log` and review the diff"
    );
}

#[test]
fn golden_has_no_morsel_lines_and_covers_every_decision_kind() {
    // Belt and braces on the golden itself: were the fixture or the file
    // edited carelessly, this catches a silently shrunk contract.
    let golden = include_str!("decision_log.golden");
    assert!(
        !golden.contains(" morsel "),
        "morsel claims are not decisions"
    );
    for kind in [
        "admit",
        "socket_home",
        "cache_lookup",
        "cache_record",
        "reopt_round",
        "trial_lease",
        "trial_accept",
        "trial_revert",
        "order_publish",
        "llc_repartition",
        "complete",
    ] {
        assert!(
            golden.contains(&format!("] {kind} ")),
            "golden lost coverage of decision kind {kind:?}"
        );
    }
}
