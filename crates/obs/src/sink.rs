//! Trace sinks: where emitted events go.
//!
//! The sink is the non-invasiveness boundary. It hangs off the
//! coordinator/server *outside* the simulated-cost path — recording an
//! event burns zero simulated cycles, exactly like the PMU bank's
//! free-running counters — and a disabled sink reduces the hot path to
//! one branch ([`TraceSink::enabled`] returning `false` short-circuits
//! event construction entirely; see [`crate::tracer::Tracer::emit`]).

use std::io::Write;
use std::sync::Mutex;

use crate::chrome;
use crate::event::TraceRecord;

/// Where trace records go. Implementations must be shareable across the
/// worker threads of a pool; recording happens under the caller's own
/// locking discipline plus whatever the sink needs internally.
pub trait TraceSink: Send + Sync {
    /// Whether the sink wants events at all. `false` lets emitters skip
    /// event construction — the entire cost of disabled tracing.
    fn enabled(&self) -> bool {
        true
    }

    /// Record one event.
    fn record(&self, record: TraceRecord);

    /// Flush/close the sink (e.g. terminate a streaming JSON document).
    /// Idempotent; a no-op by default.
    fn finish(&self) {}
}

/// The disabled sink: reports `enabled() == false` and drops anything
/// recorded anyway.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _record: TraceRecord) {}
}

/// In-memory sink: collects records for post-run export (Chrome trace,
/// decision log) and assertions.
#[derive(Debug, Default)]
pub struct MemorySink {
    records: Mutex<Vec<TraceRecord>>,
}

impl MemorySink {
    /// An empty in-memory sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records collected so far (cloned; the sink keeps collecting).
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        self.records.lock().expect("sink lock").clone()
    }

    /// Drain the collected records.
    pub fn take(&self) -> Vec<TraceRecord> {
        std::mem::take(&mut *self.records.lock().expect("sink lock"))
    }

    /// Number of records collected.
    pub fn len(&self) -> usize {
        self.records.lock().expect("sink lock").len()
    }

    /// Whether no record was collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for MemorySink {
    fn record(&self, record: TraceRecord) {
        self.records.lock().expect("sink lock").push(record);
    }
}

/// Streaming Chrome-trace JSON sink: each record is serialized and
/// written as it arrives, so a long run never buffers its whole trace.
/// [`TraceSink::finish`] (or drop) terminates the JSON document.
pub struct StreamSink {
    state: Mutex<StreamState>,
}

struct StreamState {
    writer: Box<dyn Write + Send>,
    written: usize,
    finished: bool,
}

impl StreamSink {
    /// Start a streaming trace document on `writer`.
    pub fn new(mut writer: Box<dyn Write + Send>) -> std::io::Result<Self> {
        writer.write_all(b"{\"traceEvents\":[")?;
        Ok(Self {
            state: Mutex::new(StreamState {
                writer,
                written: 0,
                finished: false,
            }),
        })
    }

    /// Records streamed so far.
    pub fn written(&self) -> usize {
        self.state.lock().expect("stream lock").written
    }
}

impl TraceSink for StreamSink {
    fn record(&self, record: TraceRecord) {
        let mut st = self.state.lock().expect("stream lock");
        if st.finished {
            return;
        }
        let json = chrome::event_json(&record);
        let sep: &[u8] = if st.written == 0 { b"" } else { b"," };
        // Trace output is best-effort by design: an I/O error must never
        // fail the (bit-identical) run it observes.
        let _ = st
            .writer
            .write_all(sep)
            .and_then(|()| st.writer.write_all(json.as_bytes()));
        st.written += 1;
    }

    fn finish(&self) {
        let mut st = self.state.lock().expect("stream lock");
        if st.finished {
            return;
        }
        st.finished = true;
        let _ = st.writer.write_all(b"]}").and_then(|()| st.writer.flush());
    }
}

impl Drop for StreamSink {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Stamp, TraceEvent};
    use std::sync::Arc;

    fn record(ordinal: u64) -> TraceRecord {
        TraceRecord {
            query: 0,
            stamp: Stamp {
                lane: 1,
                cycles: 10 * ordinal,
                ordinal,
            },
            event: TraceEvent::OrderPublish {
                socket: 0,
                order: vec![1, 0],
                epoch: ordinal,
                warm_seed: false,
            },
        }
    }

    #[test]
    fn null_sink_is_disabled_and_drops() {
        let sink = NullSink;
        assert!(!sink.enabled());
        sink.record(record(0)); // must not panic
    }

    #[test]
    fn memory_sink_collects_and_drains() {
        let sink = MemorySink::new();
        assert!(sink.enabled());
        assert!(sink.is_empty());
        sink.record(record(0));
        sink.record(record(1));
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.snapshot().len(), 2);
        let drained = sink.take();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[1].stamp.ordinal, 1);
        assert!(sink.is_empty());
    }

    /// Shared buffer `Write` target for exercising the stream sink.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn stream_sink_emits_valid_json_incrementally() {
        let buf = SharedBuf::default();
        let sink = StreamSink::new(Box::new(buf.clone())).expect("stream opens");
        sink.record(record(0));
        sink.record(record(1));
        assert_eq!(sink.written(), 2);
        sink.finish();
        sink.finish(); // idempotent
        sink.record(record(2)); // post-finish records are dropped
        assert_eq!(sink.written(), 2);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        crate::chrome::validate_json(&text).expect("streamed document is valid JSON");
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(text.ends_with("]}"));
    }

    #[test]
    fn empty_stream_is_still_a_valid_document() {
        let buf = SharedBuf::default();
        let sink = StreamSink::new(Box::new(buf.clone())).expect("stream opens");
        drop(sink); // drop finishes
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        crate::chrome::validate_json(&text).expect("empty document is valid JSON");
    }
}
