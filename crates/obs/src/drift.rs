//! Model-drift observatory: predicted-vs-observed residual tracking.
//!
//! The progressive loop's premise is that counter-model predictions are
//! good enough to steer runtime reordering — the estimator fits
//! predicted counters to observed PMU windows at every reopt round, and
//! until now the residual of that fit was thrown away. The observatory
//! keeps it: every round records, per *literal-free stage key* (the
//! front stage of the order the sample ran under) and per metric
//! (cycles-per-tuple, branch counters, L3 accesses), the predicted and
//! observed value, in a bounded window per series.
//!
//! Two error views are computed over each window:
//!
//! * **raw** relative error — `|obs − pred| / |obs|` — the face-value
//!   accuracy of the analytic model, including any constant bias from
//!   cost-parameter mismatch (the analytic [`CycleParams`] mirror the
//!   default timing, not the scaled hierarchies figures simulate);
//! * **calibrated** relative error — the same after dividing out the
//!   window's best constant scale `mean(obs)/mean(pred)` — the model's
//!   *shape* accuracy, which is what ranking decisions depend on (a
//!   constant factor cancels in every cost comparison).
//!
//! Sign bias (`(#over − #under) / n`) separates systematic over- from
//! under-prediction. Recording hangs outside the simulated-cost path —
//! the observatory burns zero simulated cycles and never perturbs the
//! run it observes (same contract as tracing).
//!
//! [`CycleParams`]: ../../popt_cost/cycles/struct.CycleParams.html

use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;

use crate::metrics::MetricsRegistry;

/// Samples kept per `(metric, stage key)` series; older samples fall
/// out so the statistics describe recent drift, not the whole history.
pub const DEFAULT_DRIFT_WINDOW: usize = 64;

/// Windowed error statistics of one `(metric, stage key)` series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftStats {
    /// Samples currently in the window.
    pub samples: usize,
    /// Mean of `|obs − pred| / |obs|` over the window.
    pub mean_rel_err: f64,
    /// Max of the same.
    pub max_rel_err: f64,
    /// `(#(pred > obs) − #(pred < obs)) / n` in `[-1, 1]`: +1 is pure
    /// over-prediction, −1 pure under-prediction.
    pub sign_bias: f64,
    /// The window's best constant correction `mean(obs) / mean(pred)`
    /// (1.0 when the predicted mean is degenerate).
    pub scale: f64,
    /// Mean relative error after applying `scale` to every prediction.
    pub calibrated_mean_rel_err: f64,
    /// Max relative error after applying `scale`.
    pub calibrated_max_rel_err: f64,
}

/// One series: the bounded `(predicted, observed)` window.
#[derive(Debug, Default)]
struct Series {
    samples: VecDeque<(f64, f64)>,
}

const EPS: f64 = 1e-9;

impl Series {
    fn stats(&self) -> DriftStats {
        let n = self.samples.len();
        let nf = n as f64;
        let mut sum_rel = 0.0;
        let mut max_rel = 0.0f64;
        let mut over = 0i64;
        let mut under = 0i64;
        let mut sum_pred = 0.0;
        let mut sum_obs = 0.0;
        for &(pred, obs) in &self.samples {
            let rel = (obs - pred).abs() / obs.abs().max(EPS);
            sum_rel += rel;
            max_rel = max_rel.max(rel);
            if pred > obs {
                over += 1;
            } else if pred < obs {
                under += 1;
            }
            sum_pred += pred;
            sum_obs += obs;
        }
        let scale = if sum_pred.abs() > EPS {
            sum_obs / sum_pred
        } else {
            1.0
        };
        let mut cal_sum = 0.0;
        let mut cal_max = 0.0f64;
        for &(pred, obs) in &self.samples {
            let rel = (obs - pred * scale).abs() / obs.abs().max(EPS);
            cal_sum += rel;
            cal_max = cal_max.max(rel);
        }
        DriftStats {
            samples: n,
            mean_rel_err: if n > 0 { sum_rel / nf } else { 0.0 },
            max_rel_err: max_rel,
            sign_bias: if n > 0 {
                (over - under) as f64 / nf
            } else {
                0.0
            },
            scale,
            calibrated_mean_rel_err: if n > 0 { cal_sum / nf } else { 0.0 },
            calibrated_max_rel_err: cal_max,
        }
    }
}

#[derive(Debug, Default)]
struct DriftInner {
    series: BTreeMap<(String, u64), Series>,
    total: u64,
}

/// Records predicted-vs-observed residuals per `(metric, stage key)`
/// series. Shareable across worker threads (`&self` recording behind an
/// internal mutex, the same shape as a trace sink); entirely outside the
/// simulated-cost path.
#[derive(Debug, Default)]
pub struct DriftObservatory {
    window: usize,
    inner: Mutex<DriftInner>,
}

impl DriftObservatory {
    /// An observatory with the [`DEFAULT_DRIFT_WINDOW`].
    pub fn new() -> Self {
        Self::with_window(DEFAULT_DRIFT_WINDOW)
    }

    /// An observatory keeping at most `window` samples per series.
    pub fn with_window(window: usize) -> Self {
        Self {
            window: window.max(1),
            inner: Mutex::new(DriftInner::default()),
        }
    }

    /// Record one residual sample. Non-finite values are dropped (a
    /// degenerate window must not poison the statistics).
    pub fn record(&self, metric: &str, stage_key: u64, predicted: f64, observed: f64) {
        if !predicted.is_finite() || !observed.is_finite() {
            return;
        }
        let mut inner = self.inner.lock().expect("drift lock");
        inner.total += 1;
        let series = inner
            .series
            .entry((metric.to_string(), stage_key))
            .or_default();
        series.samples.push_back((predicted, observed));
        while series.samples.len() > self.window {
            series.samples.pop_front();
        }
    }

    /// Total samples ever recorded (including ones that fell out of
    /// their window).
    pub fn samples_recorded(&self) -> u64 {
        self.inner.lock().expect("drift lock").total
    }

    /// Statistics of one series, if it has samples.
    pub fn stats(&self, metric: &str, stage_key: u64) -> Option<DriftStats> {
        let inner = self.inner.lock().expect("drift lock");
        inner
            .series
            .get(&(metric.to_string(), stage_key))
            .map(Series::stats)
    }

    /// All series with their statistics, sorted by `(metric, key)`.
    pub fn series(&self) -> Vec<((String, u64), DriftStats)> {
        let inner = self.inner.lock().expect("drift lock");
        inner
            .series
            .iter()
            .map(|(k, s)| (k.clone(), s.stats()))
            .collect()
    }

    /// The worst calibrated mean relative error across all stage keys of
    /// `metric` — the figure-gate summary ("after dividing out constant
    /// bias, how far off is the model's shape at worst?").
    pub fn worst_calibrated_mean(&self, metric: &str) -> Option<f64> {
        let inner = self.inner.lock().expect("drift lock");
        inner
            .series
            .iter()
            .filter(|((m, _), _)| m == metric)
            .map(|(_, s)| s.stats().calibrated_mean_rel_err)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Export per-series gauges and the sample counter into `reg`. Keys:
    /// `drift.<metric>.<stage key in hex>.<stat>`.
    pub fn export(&self, reg: &mut MetricsRegistry) {
        let series = self.series();
        reg.inc("drift.samples", self.samples_recorded());
        reg.inc("drift.series", series.len() as u64);
        for ((metric, key), s) in series {
            let prefix = format!("drift.{metric}.{key:016x}");
            reg.set_gauge(&format!("{prefix}.mean_rel_err"), s.mean_rel_err);
            reg.set_gauge(&format!("{prefix}.max_rel_err"), s.max_rel_err);
            reg.set_gauge(&format!("{prefix}.sign_bias"), s.sign_bias);
            reg.set_gauge(&format!("{prefix}.scale"), s.scale);
            reg.set_gauge(
                &format!("{prefix}.cal_mean_rel_err"),
                s.calibrated_mean_rel_err,
            );
        }
    }

    /// Deterministic plain-text table of every series, one line each.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "metric           stage_key         n  mean_err  max_err   bias    scale  cal_mean\n",
        );
        for ((metric, key), s) in self.series() {
            out.push_str(&format!(
                "{:<16} {:016x} {:>3}  {:>7.4}  {:>7.4}  {:>5.2}  {:>7.4}  {:>8.4}\n",
                metric,
                key,
                s.samples,
                s.mean_rel_err,
                s.max_rel_err,
                s.sign_bias,
                s.scale,
                s.calibrated_mean_rel_err,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions_have_zero_error_and_unit_scale() {
        let d = DriftObservatory::new();
        for i in 1..=10 {
            d.record("cpt", 7, i as f64, i as f64);
        }
        let s = d.stats("cpt", 7).unwrap();
        assert_eq!(s.samples, 10);
        assert_eq!(s.mean_rel_err, 0.0);
        assert_eq!(s.max_rel_err, 0.0);
        assert_eq!(s.sign_bias, 0.0);
        assert!((s.scale - 1.0).abs() < 1e-12);
        assert_eq!(s.calibrated_mean_rel_err, 0.0);
    }

    #[test]
    fn constant_overprediction_is_bias_the_calibration_removes() {
        let d = DriftObservatory::new();
        // Predictions are exactly 2x the observations: raw error 100%,
        // sign bias +1, but the *shape* is perfect — the window scale
        // 0.5 calibrates the error to zero.
        for obs in [10.0, 20.0, 40.0] {
            d.record("cpt", 1, 2.0 * obs, obs);
        }
        let s = d.stats("cpt", 1).unwrap();
        assert!((s.mean_rel_err - 1.0).abs() < 1e-12, "{s:?}");
        assert_eq!(s.sign_bias, 1.0);
        assert!((s.scale - 0.5).abs() < 1e-12);
        assert!(s.calibrated_mean_rel_err < 1e-12, "{s:?}");
        assert!(s.calibrated_max_rel_err < 1e-12);
    }

    #[test]
    fn mixed_errors_report_mean_max_and_signed_bias() {
        let d = DriftObservatory::new();
        d.record("l3", 2, 90.0, 100.0); // under by 10%
        d.record("l3", 2, 150.0, 100.0); // over by 50%
        d.record("l3", 2, 100.0, 100.0); // exact
        let s = d.stats("l3", 2).unwrap();
        assert!((s.mean_rel_err - 0.2).abs() < 1e-12, "{s:?}");
        assert!((s.max_rel_err - 0.5).abs() < 1e-12);
        assert_eq!(s.sign_bias, 0.0); // one over, one under, one exact
    }

    #[test]
    fn window_evicts_oldest_samples() {
        let d = DriftObservatory::with_window(2);
        d.record("cpt", 0, 1.0, 100.0); // would dominate the error
        d.record("cpt", 0, 5.0, 5.0);
        d.record("cpt", 0, 6.0, 6.0);
        let s = d.stats("cpt", 0).unwrap();
        assert_eq!(s.samples, 2);
        assert_eq!(s.mean_rel_err, 0.0, "the bad sample aged out");
        assert_eq!(d.samples_recorded(), 3, "the total still counts it");
    }

    #[test]
    fn non_finite_samples_are_dropped() {
        let d = DriftObservatory::new();
        d.record("cpt", 0, f64::NAN, 1.0);
        d.record("cpt", 0, 1.0, f64::INFINITY);
        assert_eq!(d.samples_recorded(), 0);
        assert!(d.stats("cpt", 0).is_none());
    }

    #[test]
    fn worst_calibrated_mean_scans_all_keys_of_a_metric() {
        let d = DriftObservatory::new();
        // Key 0: shape-perfect (constant 3x). Key 1: shape error.
        for obs in [1.0, 2.0, 4.0] {
            d.record("cpt", 0, 3.0 * obs, obs);
        }
        d.record("cpt", 1, 10.0, 10.0);
        d.record("cpt", 1, 30.0, 10.0);
        assert!(d.worst_calibrated_mean("other").is_none());
        let worst = d.worst_calibrated_mean("cpt").unwrap();
        let k1 = d.stats("cpt", 1).unwrap().calibrated_mean_rel_err;
        assert!((worst - k1).abs() < 1e-12, "worst {worst} vs key-1 {k1}");
        assert!(worst > 0.1);
    }

    #[test]
    fn export_and_render_are_deterministic() {
        let d = DriftObservatory::new();
        d.record("cpt", 0xabc, 2.0, 1.0);
        d.record("bnt", 0xdef, 5.0, 5.0);
        let mut reg = MetricsRegistry::new();
        d.export(&mut reg);
        assert_eq!(reg.counter("drift.samples"), 2);
        assert_eq!(reg.counter("drift.series"), 2);
        assert!(reg
            .gauge("drift.cpt.0000000000000abc.mean_rel_err")
            .is_some());
        assert!(reg.gauge("drift.bnt.0000000000000def.scale").is_some());
        let r1 = d.render();
        let r2 = d.render();
        assert_eq!(r1, r2);
        let bnt = r1.find("bnt").unwrap();
        let cpt = r1.find("cpt").unwrap();
        assert!(bnt < cpt, "series render sorted by (metric, key)");
    }
}
