//! Per-stage cycle profiler: attribute simulated cycles to lanes.
//!
//! The executors are tuple-at-a-time short-circuit loops, so the
//! simulator measures a morsel's *total* cycles but never a per-stage
//! split. The profiler reconstructs one: the engine apportions each
//! morsel's measured cycles across the stages of the order it ran under
//! (model-weighted integer apportionment via [`apportion`] — exact by
//! construction) and records the parts here, together with optimizer
//! charges; [`Profiler::finish`] fills each worker's idle lane up to the
//! pool wall clock.
//!
//! The conservation law this enables — and the workspace proptest pins —
//! is bit-exact: per worker, stage + optimizer lanes sum to the worker's
//! reported cycles, and adding the idle lane reaches the pool wall
//! clock, so the total attributed equals `wall × workers` with no cycle
//! created or destroyed. Like tracing, profiling hangs outside the
//! simulated-cost path: attaching it never changes what the simulator
//! measures.
//!
//! Export: Chrome-trace duration slices (`"X"` events, one per attributed
//! part, per-worker timelines in simulated cycles) and a text flame
//! summary.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::chrome::validate_json;

/// Attribution lane of a profiled slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ProfLane {
    /// Execution attributed to plan stage `j`.
    Stage(usize),
    /// Optimizer work (estimator fits) charged to the worker.
    Optimizer,
    /// Wait until the pool wall clock (filled by [`Profiler::finish`]).
    Idle,
}

impl ProfLane {
    /// Stable display name (`stage<j>`, `optimizer`, `idle`).
    pub fn label(&self) -> String {
        match self {
            ProfLane::Stage(j) => format!("stage{j}"),
            ProfLane::Optimizer => "optimizer".to_string(),
            ProfLane::Idle => "idle".to_string(),
        }
    }
}

/// One attributed duration on a worker's simulated timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfSlice {
    /// Worker lane (Chrome `tid`).
    pub worker: usize,
    /// Socket (Chrome `pid`).
    pub socket: usize,
    /// What the cycles are attributed to.
    pub lane: ProfLane,
    /// Slice start on the worker's simulated wall.
    pub start_cycles: u64,
    /// Attributed cycles.
    pub cycles: u64,
    /// Per-worker emission sequence (deterministic sort key: a worker's
    /// own slice order is simulation-determined even when cross-worker
    /// collection order is host-elastic).
    pub seq: u64,
}

#[derive(Debug, Default, Clone)]
struct WorkerLanes {
    stages: BTreeMap<usize, u64>,
    optimizer: u64,
    idle: u64,
    seq: u64,
    socket: usize,
}

#[derive(Debug, Default)]
struct ProfInner {
    workers: Vec<WorkerLanes>,
    slices: Vec<ProfSlice>,
    wall_cycles: u64,
    reported: Vec<u64>,
    finished: bool,
}

/// Collects attributed cycles per worker lane. Shareable across worker
/// threads (`&self` recording behind an internal mutex); entirely
/// outside the simulated-cost path.
#[derive(Debug)]
pub struct Profiler {
    inner: Mutex<ProfInner>,
}

impl Profiler {
    /// A profiler for a pool of `workers` workers.
    pub fn new(workers: usize) -> Self {
        Self {
            inner: Mutex::new(ProfInner {
                workers: vec![WorkerLanes::default(); workers],
                slices: Vec::new(),
                wall_cycles: 0,
                reported: vec![0; workers],
                finished: false,
            }),
        }
    }

    /// Record one morsel's per-stage attribution: `parts` are
    /// `(plan stage, cycles)` in evaluation order, laid out back-to-back
    /// from `start_cycles` on the worker's simulated timeline.
    pub fn record_morsel(
        &self,
        worker: usize,
        socket: usize,
        start_cycles: u64,
        parts: &[(usize, u64)],
    ) {
        let mut inner = self.inner.lock().expect("profiler lock");
        let mut pos = start_cycles;
        for &(stage, cycles) in parts {
            let seq = {
                let lanes = match inner.workers.get_mut(worker) {
                    Some(l) => l,
                    None => return,
                };
                *lanes.stages.entry(stage).or_insert(0) += cycles;
                lanes.socket = socket;
                lanes.seq += 1;
                lanes.seq
            };
            inner.slices.push(ProfSlice {
                worker,
                socket,
                lane: ProfLane::Stage(stage),
                start_cycles: pos,
                cycles,
                seq,
            });
            pos += cycles;
        }
    }

    /// Record optimizer cycles charged to `worker` at `start_cycles`.
    pub fn record_optimizer(&self, worker: usize, socket: usize, start_cycles: u64, cycles: u64) {
        if cycles == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("profiler lock");
        let seq = {
            let lanes = match inner.workers.get_mut(worker) {
                Some(l) => l,
                None => return,
            };
            lanes.optimizer += cycles;
            lanes.socket = socket;
            lanes.seq += 1;
            lanes.seq
        };
        inner.slices.push(ProfSlice {
            worker,
            socket,
            lane: ProfLane::Optimizer,
            start_cycles,
            cycles,
            seq,
        });
    }

    /// Close the profile against the pool's per-worker reported cycles
    /// (execution + optimizer): the wall clock is their max, and each
    /// worker's idle lane is filled up to it. Idempotent per run.
    pub fn finish(&self, per_worker_cycles: &[u64]) {
        let mut inner = self.inner.lock().expect("profiler lock");
        if inner.finished {
            return;
        }
        inner.finished = true;
        inner.wall_cycles = per_worker_cycles.iter().copied().max().unwrap_or(0);
        inner.reported = per_worker_cycles.to_vec();
        let wall = inner.wall_cycles;
        let idle_slices: Vec<ProfSlice> = per_worker_cycles
            .iter()
            .enumerate()
            .filter_map(|(w, &busy)| {
                let idle = wall.saturating_sub(busy);
                let lanes = inner.workers.get_mut(w)?;
                lanes.idle = idle;
                if idle == 0 {
                    return None;
                }
                lanes.seq += 1;
                Some(ProfSlice {
                    worker: w,
                    socket: lanes.socket,
                    lane: ProfLane::Idle,
                    start_cycles: busy,
                    cycles: idle,
                    seq: lanes.seq,
                })
            })
            .collect();
        inner.slices.extend(idle_slices);
    }

    /// Whether [`Profiler::finish`] ran.
    pub fn finished(&self) -> bool {
        self.inner.lock().expect("profiler lock").finished
    }

    /// The pool wall clock recorded at finish.
    pub fn wall_cycles(&self) -> u64 {
        self.inner.lock().expect("profiler lock").wall_cycles
    }

    /// Per-worker `(stage total, optimizer, idle)` cycles.
    pub fn worker_lanes(&self, worker: usize) -> (u64, u64, u64) {
        let inner = self.inner.lock().expect("profiler lock");
        inner.workers.get(worker).map_or((0, 0, 0), |l| {
            (l.stages.values().sum(), l.optimizer, l.idle)
        })
    }

    /// Pool-wide attributed cycles per stage (plan-indexed).
    pub fn stage_totals(&self) -> BTreeMap<usize, u64> {
        let inner = self.inner.lock().expect("profiler lock");
        let mut totals = BTreeMap::new();
        for lanes in &inner.workers {
            for (&stage, &cycles) in &lanes.stages {
                *totals.entry(stage).or_insert(0) += cycles;
            }
        }
        totals
    }

    /// Everything attributed across all workers and lanes. After
    /// [`Profiler::finish`], conservation makes this exactly
    /// `wall_cycles × workers`.
    pub fn total_attributed(&self) -> u64 {
        let inner = self.inner.lock().expect("profiler lock");
        inner
            .workers
            .iter()
            .map(|l| l.stages.values().sum::<u64>() + l.optimizer + l.idle)
            .sum()
    }

    /// Bit-exact conservation: per worker, stage + optimizer lanes equal
    /// the reported cycles and adding idle reaches the wall clock.
    pub fn conserves(&self) -> bool {
        let inner = self.inner.lock().expect("profiler lock");
        if !inner.finished {
            return false;
        }
        inner
            .workers
            .iter()
            .zip(&inner.reported)
            .all(|(l, &reported)| {
                let busy = l.stages.values().sum::<u64>() + l.optimizer;
                busy == reported && busy + l.idle == inner.wall_cycles
            })
    }

    /// All recorded slices, deterministically ordered by
    /// `(worker, seq)` — each worker's own timeline order is
    /// simulation-determined even when the cross-worker collection
    /// order was host-elastic.
    pub fn slices(&self) -> Vec<ProfSlice> {
        let inner = self.inner.lock().expect("profiler lock");
        let mut slices = inner.slices.clone();
        slices.sort_by_key(|s| (s.worker, s.seq));
        slices
    }

    /// Chrome-trace document of the attributed slices: per-worker
    /// timelines (`tid` = worker, `pid` = socket) of `"X"` duration
    /// events named after their lane, in simulated cycles.
    pub fn chrome_trace(&self) -> String {
        let events: Vec<String> = self
            .slices()
            .iter()
            .map(|s| {
                format!(
                    "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{}}}",
                    s.lane.label(),
                    s.start_cycles,
                    s.cycles,
                    s.socket,
                    s.worker
                )
            })
            .collect();
        let doc = format!("{{\"traceEvents\":[{}]}}", events.join(","));
        debug_assert!(validate_json(&doc).is_ok());
        doc
    }

    /// Text flame summary: pool-wide cycles per lane with their share of
    /// the attributed total, widest lane first (ties broken by lane
    /// order for determinism).
    pub fn flame(&self) -> String {
        let mut lanes: Vec<(ProfLane, u64)> = self
            .stage_totals()
            .into_iter()
            .map(|(j, c)| (ProfLane::Stage(j), c))
            .collect();
        let (mut opt, mut idle) = (0u64, 0u64);
        {
            let inner = self.inner.lock().expect("profiler lock");
            for l in &inner.workers {
                opt += l.optimizer;
                idle += l.idle;
            }
        }
        lanes.push((ProfLane::Optimizer, opt));
        lanes.push((ProfLane::Idle, idle));
        let total: u64 = lanes.iter().map(|(_, c)| c).sum();
        lanes.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut out = String::new();
        for (lane, cycles) in lanes {
            let share = if total > 0 {
                cycles as f64 / total as f64
            } else {
                0.0
            };
            let bar = "#".repeat((share * 40.0).round() as usize);
            out.push_str(&format!(
                "{:<12} {:>14}  {:>5.1}%  {}\n",
                lane.label(),
                cycles,
                share * 100.0,
                bar
            ));
        }
        out
    }
}

/// Split `total` cycles across `weights.len()` parts proportionally to
/// the (non-negative, finite) weights, *exactly*: the parts always sum
/// to `total`. Weights are quantized to 32-bit fixed point; floor
/// remainders are handed out one cycle at a time from the first part —
/// fully deterministic, so two runs attribute identically. Degenerate
/// weights (all zero / non-finite) fall back to a uniform split.
pub fn apportion(total: u64, weights: &[f64]) -> Vec<u64> {
    let n = weights.len();
    if n == 0 {
        return Vec::new();
    }
    let clean: Vec<f64> = weights
        .iter()
        .map(|&w| if w.is_finite() && w > 0.0 { w } else { 0.0 })
        .collect();
    let sum: f64 = clean.iter().sum();
    let quantized: Vec<u64> = if sum > 0.0 {
        clean
            .iter()
            .map(|&w| ((w / sum) * 4_294_967_296.0) as u64)
            .collect()
    } else {
        vec![1; n]
    };
    let qsum: u128 = quantized.iter().map(|&q| q as u128).sum::<u128>().max(1);
    let mut parts: Vec<u64> = quantized
        .iter()
        .map(|&q| ((total as u128 * q as u128) / qsum) as u64)
        .collect();
    let mut remainder = total - parts.iter().sum::<u64>();
    let mut i = 0usize;
    while remainder > 0 {
        parts[i % n] += 1;
        remainder -= 1;
        i += 1;
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apportion_conserves_exactly() {
        for total in [0u64, 1, 7, 1000, 12_345_678_901] {
            for weights in [
                vec![1.0],
                vec![1.0, 1.0, 1.0],
                vec![3.0, 1.0],
                vec![0.1, 0.9, 0.0001],
                vec![0.0, 0.0],
                vec![f64::NAN, 2.0, -1.0],
            ] {
                let parts = apportion(total, &weights);
                assert_eq!(parts.iter().sum::<u64>(), total, "{total} over {weights:?}");
                assert_eq!(parts.len(), weights.len());
            }
        }
        assert!(apportion(100, &[]).is_empty());
    }

    #[test]
    fn apportion_follows_weights() {
        let parts = apportion(1000, &[3.0, 1.0]);
        assert!(parts[0] >= 740 && parts[0] <= 760, "{parts:?}");
        // Degenerate weights fall back to uniform.
        let parts = apportion(100, &[0.0, 0.0]);
        assert_eq!(parts, vec![50, 50]);
    }

    #[test]
    fn lanes_accumulate_and_finish_fills_idle_to_the_wall() {
        let prof = Profiler::new(2);
        prof.record_morsel(0, 0, 0, &[(1, 60), (0, 40)]);
        prof.record_optimizer(0, 0, 100, 20);
        prof.record_morsel(1, 1, 0, &[(1, 30), (0, 20)]);
        assert!(!prof.finished());
        assert!(!prof.conserves(), "unfinished profiles never conserve");

        // Worker 0 reported 120 (100 exec + 20 optimizer), worker 1: 50.
        prof.finish(&[120, 50]);
        assert_eq!(prof.wall_cycles(), 120);
        assert_eq!(prof.worker_lanes(0), (100, 20, 0));
        assert_eq!(prof.worker_lanes(1), (50, 0, 70));
        assert_eq!(prof.stage_totals().get(&1), Some(&90));
        assert!(prof.conserves());
        assert_eq!(prof.total_attributed(), 120 * 2);
        // Idempotent.
        prof.finish(&[999, 999]);
        assert_eq!(prof.wall_cycles(), 120);
    }

    #[test]
    fn conservation_detects_unattributed_cycles() {
        let prof = Profiler::new(1);
        prof.record_morsel(0, 0, 0, &[(0, 90)]);
        prof.finish(&[100]); // 10 cycles were never attributed
        assert!(!prof.conserves());
    }

    #[test]
    fn chrome_export_validates_and_orders_slices() {
        let prof = Profiler::new(2);
        prof.record_morsel(1, 1, 0, &[(0, 5)]);
        prof.record_morsel(0, 0, 0, &[(2, 10), (0, 7)]);
        prof.record_optimizer(0, 0, 17, 3);
        prof.finish(&[20, 5]);
        let slices = prof.slices();
        assert_eq!(slices[0].worker, 0, "sorted by worker first");
        assert_eq!(slices[0].lane, ProfLane::Stage(2));
        assert_eq!(
            slices.last().unwrap().lane,
            ProfLane::Idle,
            "worker 1 idles to the wall"
        );
        let doc = prof.chrome_trace();
        validate_json(&doc).expect("profiler chrome export parses");
        assert!(doc.contains("\"name\":\"stage2\""));
        assert!(doc.contains("\"name\":\"optimizer\""));
        assert!(doc.contains("\"name\":\"idle\""));
    }

    #[test]
    fn flame_summary_ranks_lanes_by_cycles() {
        let prof = Profiler::new(1);
        prof.record_morsel(0, 0, 0, &[(0, 10), (1, 80)]);
        prof.record_optimizer(0, 0, 90, 10);
        prof.finish(&[100]);
        let flame = prof.flame();
        let s1 = flame.find("stage1").unwrap();
        let s0 = flame.find("stage0").unwrap();
        assert!(s1 < s0, "widest lane first:\n{flame}");
        assert!(flame.contains("80.0%"), "{flame}");
        assert_eq!(flame, prof.flame(), "render is deterministic");
    }

    #[test]
    fn out_of_range_workers_are_ignored() {
        let prof = Profiler::new(1);
        prof.record_morsel(5, 0, 0, &[(0, 10)]);
        prof.record_optimizer(5, 0, 0, 10);
        prof.finish(&[0]);
        assert_eq!(prof.total_attributed(), 0);
    }
}
