//! # popt-obs — non-invasive observability for the progressive engine
//!
//! The paper's premise is *non-invasive* observation: free-running
//! hardware counters read without perturbing the query (§3–§4). This
//! crate gives the engine's own decisions the same property. Every
//! decision point — trial leases, accepts/reverts, order publications,
//! cache warm-hits, LLC repartitions, socket homing — can emit a
//! structured [`event::TraceEvent`] into a [`sink::TraceSink`] that
//! hangs *outside* the simulated-cost path: tracing burns zero simulated
//! cycles, so enabling it is bit-identical to disabling it (pinned by
//! `tests/proptest_obs.rs` in the workspace root).
//!
//! Determinism is load-bearing and host time never enters a trace.
//! Events are stamped by [`tracer::Tracer`] with `(lane, simulated
//! cycle, ordinal)` where the cycle comes from a per-lane clock cell the
//! owning worker publishes at morsel boundaries and the ordinal from a
//! per-lane counter — both pure functions of the simulation, not of the
//! host scheduler. A disabled sink costs one branch; event payloads are
//! built lazily and never constructed when tracing is off.
//!
//! * [`event`] — the event taxonomy (admit → socket-home → morsel →
//!   reopt round → trial lease/accept/revert → order publish → cache
//!   hit/record/evict → LLC repartition → completion);
//! * [`sink`] — the [`sink::TraceSink`] trait with null, in-memory, and
//!   streaming-JSON implementations;
//! * [`tracer`] — per-lane clocks/ordinals and lazy emission;
//! * [`metrics`] — counters, gauges, and fixed-bucket histograms,
//!   snapshotable at any point;
//! * [`chrome`] — Chrome-trace-event JSON export (Perfetto per-core
//!   timelines) plus a dependency-free JSON validator;
//! * [`explain`] — the human-readable progressive decision log: *why*
//!   each order was accepted;
//! * [`drift`] — the model-drift observatory: predicted-vs-observed
//!   residuals per literal-free stage key, with windowed error
//!   statistics (how good is the model the decisions trust?);
//! * [`profile`] — the per-stage cycle profiler: attributed
//!   stage/optimizer/idle lanes under a bit-exact conservation law,
//!   exported as Chrome duration slices and a text flame summary.

pub mod chrome;
pub mod drift;
pub mod event;
pub mod explain;
pub mod metrics;
pub mod profile;
pub mod sink;
pub mod tracer;

pub use chrome::{chrome_trace, validate_json};
pub use drift::{DriftObservatory, DriftStats};
pub use event::{Arg, Stamp, TraceEvent, TraceRecord};
pub use explain::{decision_line, decision_log};
pub use metrics::{Histogram, MetricsRegistry};
pub use profile::{apportion, ProfLane, ProfSlice, Profiler};
pub use sink::{MemorySink, NullSink, StreamSink, TraceSink};
pub use tracer::Tracer;
