//! The human-readable progressive decision log: *why* each order was
//! accepted, in deterministic stamp order.
//!
//! Each decision renders as one line:
//!
//! ```text
//! [q0 w2 @ 12345 #17] trial_accept socket=0 order=[1,0] baseline_cpt=3.50 trial_cpt=2.25 epoch=1
//! ```
//!
//! `q` is the query, `w` the emitting lane (worker), `@` the simulated
//! cycle, `#` the lane ordinal. Morsel claims are execution, not
//! decisions, and are omitted — the log reads as the engine's reasoning.

use crate::event::{Arg, TraceRecord};

fn arg_text(arg: &Arg) -> String {
    match arg {
        Arg::U(v) => format!("{v}"),
        Arg::I(v) => format!("{v}"),
        Arg::F(v) => format!("{v:.2}"),
        Arg::B(v) => format!("{v}"),
        Arg::S(v) => v.clone(),
        Arg::Order(v) => {
            let items: Vec<String> = v.iter().map(|x| x.to_string()).collect();
            format!("[{}]", items.join(","))
        }
        Arg::Shares(v) => {
            let items: Vec<String> = v.iter().map(|x| x.to_string()).collect();
            format!("[{}]", items.join(","))
        }
        Arg::Fs(v) => {
            let items: Vec<String> = v.iter().map(|x| format!("{x:.3}")).collect();
            format!("[{}]", items.join(","))
        }
    }
}

/// Render one decision record as a log line.
pub fn decision_line(record: &TraceRecord) -> String {
    let args: Vec<String> = record
        .event
        .args()
        .into_iter()
        .map(|(k, v)| format!("{k}={}", arg_text(&v)))
        .collect();
    format!(
        "[q{} w{} @ {} #{}] {} {}",
        record.query,
        record.stamp.lane,
        record.stamp.cycles,
        record.stamp.ordinal,
        record.event.kind(),
        args.join(" ")
    )
}

/// The full decision log over `records`: decisions only (morsel claims
/// dropped), sorted by `(query, cycles, lane, ordinal)` so output is
/// deterministic regardless of sink collection order.
pub fn decision_log(records: &[TraceRecord]) -> String {
    let mut decisions: Vec<&TraceRecord> =
        records.iter().filter(|r| r.event.is_decision()).collect();
    decisions.sort_by_key(|r| (r.query, r.stamp.cycles, r.stamp.lane, r.stamp.ordinal));
    let mut out = String::new();
    for record in decisions {
        out.push_str(&decision_line(record));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Stamp, TraceEvent};

    fn rec(query: usize, cycles: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            query,
            stamp: Stamp {
                lane: 1,
                cycles,
                ordinal: 0,
            },
            event,
        }
    }

    #[test]
    fn log_renders_decisions_in_stamp_order_and_drops_morsels() {
        let records = vec![
            rec(
                0,
                900,
                TraceEvent::TrialAccept {
                    socket: 0,
                    order: vec![1, 0],
                    baseline_cpt: 3.5,
                    trial_cpt: 2.25,
                    epoch: 1,
                },
            ),
            rec(
                0,
                100,
                TraceEvent::TrialLease {
                    socket: 0,
                    order: vec![1, 0],
                    baseline_cpt: 3.5,
                },
            ),
            rec(
                0,
                500,
                TraceEvent::MorselClaim {
                    socket: 0,
                    start_row: 0,
                    rows: 1024,
                    start_cycles: 400,
                    cycles: 100,
                    trial: true,
                    epoch: 1,
                },
            ),
        ];
        let log = decision_log(&records);
        let lines: Vec<&str> = log.lines().collect();
        assert_eq!(lines.len(), 2, "morsel claims are not decisions");
        assert!(lines[0].starts_with("[q0 w1 @ 100 #0] trial_lease"));
        assert!(lines[1].starts_with("[q0 w1 @ 900 #0] trial_accept"));
        assert!(lines[1].contains("order=[1,0]"));
        assert!(lines[1].contains("baseline_cpt=3.50"));
        assert!(lines[1].contains("trial_cpt=2.25"));
    }

    #[test]
    fn selectivity_vectors_render_compactly() {
        let line = decision_line(&rec(
            2,
            64,
            TraceEvent::ReoptRound {
                socket: 1,
                round: 3,
                selectivities: vec![0.25, 0.5],
                fit_error: 0.0,
                proposed: Some(vec![1, 0]),
            },
        ));
        assert!(line.contains("reopt_round"));
        assert!(line.contains("selectivities=[0.250,0.500]"));
        assert!(line.contains("proposed=[1,0]"));
    }
}
