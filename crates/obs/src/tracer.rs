//! Deterministic stamping and lazy emission.
//!
//! A [`Tracer`] owns one *lane* per worker plus a coordinator lane. Each
//! lane carries a simulated-cycle clock cell and an ordinal counter. The
//! clock cell is written only by the lane's owning worker — it publishes
//! its simulated wall position at morsel boundaries — so an event emitted
//! from a worker's own call path reads that worker's own clock. Host time
//! never enters a stamp; two runs of the same deterministic configuration
//! produce identical stamps.
//!
//! Emission is lazy: [`Tracer::emit`] takes a closure so that when the
//! sink is disabled no event payload (orders, selectivity vectors, label
//! strings) is ever constructed. The cost of disabled tracing is one
//! branch on an already-loaded bool.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::event::{Stamp, TraceEvent, TraceRecord};
use crate::sink::{NullSink, TraceSink};

/// Per-lane stamp state. Relaxed ordering is sufficient: the clock cell
/// is written by its owning worker and read either from that worker's
/// own call path or under the coordinator mutex that already orders the
/// cross-thread handoff.
#[derive(Debug, Default)]
struct Lane {
    clock: AtomicU64,
    ordinal: AtomicU64,
}

/// Stamps and emits trace events into a shared [`TraceSink`].
pub struct Tracer {
    sink: Arc<dyn TraceSink>,
    lanes: Vec<Lane>,
    enabled: bool,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("lanes", &self.lanes.len())
            .field("enabled", &self.enabled)
            .finish()
    }
}

impl Tracer {
    /// A tracer with `lanes` stamp lanes feeding `sink`.
    pub fn new(sink: Arc<dyn TraceSink>, lanes: usize) -> Self {
        let enabled = sink.enabled();
        Self {
            sink,
            lanes: (0..lanes.max(1)).map(|_| Lane::default()).collect(),
            enabled,
        }
    }

    /// A tracer for a pool of `workers` workers: one lane per worker
    /// plus the coordinator lane ([`Self::coordinator_lane`]).
    pub fn for_workers(sink: Arc<dyn TraceSink>, workers: usize) -> Self {
        Self::new(sink, workers + 1)
    }

    /// A disabled tracer (null sink); stamps nothing, emits nothing.
    pub fn disabled() -> Self {
        Self::new(Arc::new(NullSink), 1)
    }

    /// The lane reserved for events not attributable to a single worker
    /// (batch-boundary declarations, admissions).
    pub fn coordinator_lane(&self) -> usize {
        self.lanes.len() - 1
    }

    /// Number of stamp lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Whether the sink wants events. When `false`, `emit` closures are
    /// never invoked.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    fn lane(&self, lane: usize) -> &Lane {
        // Defensive clamp: a lane index past the end (misconfigured
        // tracer) lands on the coordinator lane instead of panicking
        // inside the engine's locked sections.
        self.lanes
            .get(lane)
            .unwrap_or_else(|| self.lanes.last().expect("tracer has at least one lane"))
    }

    /// Publish `lane`'s simulated wall position. Called by the owning
    /// worker at morsel boundaries so subsequent events on the lane are
    /// stamped at that position.
    pub fn set_clock(&self, lane: usize, cycles: u64) {
        if self.enabled {
            self.lane(lane).clock.store(cycles, Ordering::Relaxed);
        }
    }

    /// The lane's last published simulated wall position.
    pub fn clock(&self, lane: usize) -> u64 {
        self.lane(lane).clock.load(Ordering::Relaxed)
    }

    /// Emit an event on `lane` for `query`, stamped at the lane's
    /// current clock. The closure runs only when the sink is enabled.
    pub fn emit(&self, lane: usize, query: usize, f: impl FnOnce() -> TraceEvent) {
        if !self.enabled {
            return;
        }
        let cycles = self.lane(lane).clock.load(Ordering::Relaxed);
        self.emit_at(lane, query, cycles, f);
    }

    /// Emit an event stamped at an explicit cycle position (e.g. a
    /// morsel's start rather than the lane clock at its end).
    pub fn emit_at(&self, lane: usize, query: usize, cycles: u64, f: impl FnOnce() -> TraceEvent) {
        if !self.enabled {
            return;
        }
        let cell = self.lane(lane);
        let ordinal = cell.ordinal.fetch_add(1, Ordering::Relaxed);
        self.sink.record(TraceRecord {
            query,
            stamp: Stamp {
                lane: lane.min(self.lanes.len() - 1),
                cycles,
                ordinal,
            },
            event: f(),
        });
    }

    /// Flush/close the underlying sink.
    pub fn finish(&self) {
        self.sink.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;

    fn event() -> TraceEvent {
        TraceEvent::Complete {
            qualified: 1,
            sum: 2,
            morsels: 3,
            wall_cycles: 4,
        }
    }

    #[test]
    fn disabled_tracer_never_builds_events() {
        let tracer = Tracer::disabled();
        assert!(!tracer.enabled());
        tracer.set_clock(0, 99);
        tracer.emit(0, 0, || panic!("closure must not run when disabled"));
        assert_eq!(tracer.clock(0), 0, "disabled tracer skips clock writes");
    }

    #[test]
    fn stamps_carry_lane_clock_and_per_lane_ordinals() {
        let sink = Arc::new(MemorySink::new());
        let tracer = Tracer::for_workers(sink.clone(), 2);
        assert_eq!(tracer.lanes(), 3);
        assert_eq!(tracer.coordinator_lane(), 2);

        tracer.set_clock(0, 100);
        tracer.set_clock(1, 50);
        tracer.emit(0, 0, event);
        tracer.emit(0, 0, event);
        tracer.emit(1, 0, event);
        tracer.emit_at(1, 0, 7, event);

        let records = sink.take();
        assert_eq!(records.len(), 4);
        assert_eq!(
            (
                records[0].stamp.lane,
                records[0].stamp.cycles,
                records[0].stamp.ordinal
            ),
            (0, 100, 0)
        );
        assert_eq!(
            (
                records[1].stamp.lane,
                records[1].stamp.cycles,
                records[1].stamp.ordinal
            ),
            (0, 100, 1)
        );
        assert_eq!(
            (
                records[2].stamp.lane,
                records[2].stamp.cycles,
                records[2].stamp.ordinal
            ),
            (1, 50, 0)
        );
        assert_eq!(
            (
                records[3].stamp.lane,
                records[3].stamp.cycles,
                records[3].stamp.ordinal
            ),
            (1, 7, 1)
        );
    }

    #[test]
    fn out_of_range_lane_clamps_to_coordinator() {
        let sink = Arc::new(MemorySink::new());
        let tracer = Tracer::new(sink.clone(), 2);
        tracer.set_clock(1, 11);
        tracer.emit(9, 3, event);
        let records = sink.take();
        assert_eq!(records[0].stamp.lane, 1);
        assert_eq!(records[0].stamp.cycles, 11);
        assert_eq!(records[0].query, 3);
    }
}
