//! Metrics registry: counters, gauges, and fixed-bucket histograms.
//!
//! The registry is a post-hoc aggregation surface: reports feed it after
//! a run (`record_metrics` on `ParallelReport`/`ServeReport`), figures
//! render it, and tests assert against snapshots. Nothing in here sits
//! on the simulated-cost path. Keys are ordered (`BTreeMap`) so rendered
//! output is deterministic.

use std::collections::BTreeMap;

/// A fixed-bucket histogram: `bounds[i]` is the inclusive upper edge of
/// bucket `i`; one overflow bucket catches everything above the last
/// bound. Buckets are fixed at construction — observation is O(log n)
/// and a snapshot is a plain copy.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    count: u64,
    sum: u64,
}

impl Histogram {
    /// A histogram over the given inclusive upper bounds (must be
    /// strictly increasing and non-empty), plus an overflow bucket.
    pub fn new(bounds: Vec<u64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let buckets = bounds.len() + 1;
        Self {
            bounds,
            counts: vec![0; buckets],
            count: 0,
            sum: 0,
        }
    }

    /// A power-of-two histogram: bounds 1, 2, 4, … 2^(buckets-1). Good
    /// default for cycle and miss counts spanning orders of magnitude.
    pub fn pow2(buckets: usize) -> Self {
        assert!((1..=63).contains(&buckets), "pow2 buckets must be 1..=63");
        Self::new((0..buckets as u32).map(|i| 1u64 << i).collect())
    }

    /// Record one value.
    pub fn observe(&mut self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observed values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean of observed values, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The bucket bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts (last entry is the overflow bucket).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Upper bound of the bucket containing quantile `q` (0.0..=1.0);
    /// `None` when empty. Values past the last bound report `u64::MAX`
    /// (the overflow bucket has no upper edge).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(self.bounds.get(i).copied().unwrap_or(u64::MAX));
            }
        }
        Some(u64::MAX)
    }
}

/// Named counters, gauges, and histograms, snapshotable at any point.
#[derive(Debug, Default, Clone)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to counter `name` (created at 0).
    pub fn inc(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Set gauge `name` to `value`.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Record `value` into histogram `name`, creating it with
    /// `Histogram::pow2(40)` if absent.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::pow2(40))
            .observe(value);
    }

    /// Record into a histogram created (if absent) with explicit bounds.
    pub fn observe_with(&mut self, name: &str, bounds: &[u64], value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds.to_vec()))
            .observe(value);
    }

    /// Counter value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram by name, if observed.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// A point-in-time copy of the registry.
    pub fn snapshot(&self) -> Self {
        self.clone()
    }

    /// Merge another registry into this one: counters add, gauges take
    /// the other's value, histograms with identical bounds merge
    /// bucket-wise (mismatched bounds take the other's histogram).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) if mine.bounds == h.bounds => {
                    for (a, b) in mine.counts.iter_mut().zip(&h.counts) {
                        *a += b;
                    }
                    mine.count += h.count;
                    mine.sum = mine.sum.saturating_add(h.sum);
                }
                _ => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
    }

    /// Deterministic plain-text rendering: counters, gauges, then
    /// histogram summaries (count/mean/p50/p99), sorted by name.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("counter {k} = {v}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("gauge {k} = {v:.4}\n"));
        }
        for (k, h) in &self.histograms {
            let p50 = h.quantile(0.5).unwrap_or(0);
            let p99 = h.quantile(0.99).unwrap_or(0);
            out.push_str(&format!(
                "hist {k}: count={} mean={:.1} p50<={} p99<={}\n",
                h.count(),
                h.mean(),
                p50,
                p99
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_values_on_inclusive_upper_edges() {
        let mut h = Histogram::new(vec![10, 100, 1000]);
        h.observe(0);
        h.observe(10); // inclusive: lands in bucket 0
        h.observe(11);
        h.observe(100);
        h.observe(1000);
        h.observe(1001); // overflow bucket
        assert_eq!(h.counts(), &[2, 2, 1, 1]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 10 + 11 + 100 + 1000 + 1001);
    }

    #[test]
    fn pow2_histogram_spans_orders_of_magnitude() {
        let mut h = Histogram::pow2(8); // bounds 1,2,4,...,128
        assert_eq!(h.bounds(), &[1, 2, 4, 8, 16, 32, 64, 128]);
        h.observe(1);
        h.observe(3);
        h.observe(128);
        h.observe(129);
        assert_eq!(h.counts(), &[1, 0, 1, 0, 0, 0, 0, 1, 1]);
    }

    #[test]
    fn quantiles_report_bucket_upper_bounds() {
        let mut h = Histogram::new(vec![1, 2, 4, 8]);
        for v in [1, 1, 2, 3, 5, 9] {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(0.5), Some(2));
        assert_eq!(h.quantile(0.75), Some(8)); // rank 5 of 6 → value 5, in (4,8]
        assert_eq!(h.quantile(1.0), Some(u64::MAX)); // 9 overflows the last bound
        assert_eq!(Histogram::pow2(4).quantile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotone_bounds_are_rejected() {
        Histogram::new(vec![10, 10]);
    }

    #[test]
    fn registry_counters_gauges_and_render_are_deterministic() {
        let mut r = MetricsRegistry::new();
        r.inc("b.count", 2);
        r.inc("a.count", 1);
        r.inc("a.count", 1);
        r.set_gauge("occupancy", 0.5);
        r.observe("cycles", 100);
        assert_eq!(r.counter("a.count"), 2);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.gauge("occupancy"), Some(0.5));
        assert_eq!(r.histogram("cycles").unwrap().count(), 1);
        let rendered = r.render();
        let a = rendered.find("a.count").unwrap();
        let b = rendered.find("b.count").unwrap();
        assert!(a < b, "render sorts by name");
        assert_eq!(rendered, r.snapshot().render());
    }

    #[test]
    fn merge_adds_counters_and_buckets() {
        let mut a = MetricsRegistry::new();
        a.inc("n", 1);
        a.observe_with("lat", &[10, 100], 5);
        let mut b = MetricsRegistry::new();
        b.inc("n", 2);
        b.set_gauge("g", 1.0);
        b.observe_with("lat", &[10, 100], 50);
        a.merge(&b);
        assert_eq!(a.counter("n"), 3);
        assert_eq!(a.gauge("g"), Some(1.0));
        let h = a.histogram("lat").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.counts(), &[1, 1, 0]);
    }
}
