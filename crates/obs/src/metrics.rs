//! Metrics registry: counters, gauges, and fixed-bucket histograms.
//!
//! The registry is a post-hoc aggregation surface: reports feed it after
//! a run (`record_metrics` on `ParallelReport`/`ServeReport`), figures
//! render it, and tests assert against snapshots. Nothing in here sits
//! on the simulated-cost path. Keys are ordered (`BTreeMap`) so rendered
//! output is deterministic.

use std::collections::BTreeMap;

/// A fixed-bucket histogram: `bounds[i]` is the inclusive upper edge of
/// bucket `i`; one overflow bucket catches everything above the last
/// bound. Buckets are fixed at construction — observation is O(log n)
/// and a snapshot is a plain copy.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    count: u64,
    sum: u64,
}

impl Histogram {
    /// A histogram over the given inclusive upper bounds (must be
    /// strictly increasing and non-empty), plus an overflow bucket.
    pub fn new(bounds: Vec<u64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let buckets = bounds.len() + 1;
        Self {
            bounds,
            counts: vec![0; buckets],
            count: 0,
            sum: 0,
        }
    }

    /// A power-of-two histogram: bounds 1, 2, 4, … 2^(buckets-1). Good
    /// default for cycle and miss counts spanning orders of magnitude.
    pub fn pow2(buckets: usize) -> Self {
        assert!((1..=63).contains(&buckets), "pow2 buckets must be 1..=63");
        Self::new((0..buckets as u32).map(|i| 1u64 << i).collect())
    }

    /// Record one value.
    pub fn observe(&mut self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observed values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean of observed values, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The bucket bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts (last entry is the overflow bucket).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Upper bound of the bucket containing quantile `q` (0.0..=1.0);
    /// `None` when empty. Values past the last bound report `u64::MAX`
    /// (the overflow bucket has no upper edge).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(self.bounds.get(i).copied().unwrap_or(u64::MAX));
            }
        }
        Some(u64::MAX)
    }

    /// Quantile `q` (0.0..=1.0) with linear interpolation inside the
    /// containing bucket; `None` when empty. The fractional rank
    /// `q × count` is located in the cumulative distribution, and the
    /// value interpolates between the bucket's lower edge (the previous
    /// bound; 0 for the first bucket) and its upper bound. A rank
    /// landing in the overflow bucket reports the last bound (the
    /// overflow bucket has no upper edge to interpolate toward) — use
    /// [`Histogram::quantile`] when the `u64::MAX` sentinel is wanted
    /// instead.
    pub fn quantile_interpolated(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let before = cum;
            cum += c;
            if (cum as f64) >= target {
                let hi = match self.bounds.get(i) {
                    Some(&b) => b as f64,
                    // Overflow bucket: unbounded above, report the edge.
                    None => return Some(*self.bounds.last().expect("non-empty bounds") as f64),
                };
                let lo = if i == 0 {
                    0.0
                } else {
                    self.bounds[i - 1] as f64
                };
                let frac = ((target - before as f64) / c as f64).clamp(0.0, 1.0);
                return Some(lo + frac * (hi - lo));
            }
        }
        Some(*self.bounds.last().expect("non-empty bounds") as f64)
    }
}

/// Named counters, gauges, and histograms, snapshotable at any point.
#[derive(Debug, Default, Clone)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to counter `name` (created at 0).
    pub fn inc(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Set gauge `name` to `value`.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Record `value` into histogram `name`, creating it with
    /// `Histogram::pow2(40)` if absent.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::pow2(40))
            .observe(value);
    }

    /// Record into a histogram created (if absent) with explicit bounds.
    pub fn observe_with(&mut self, name: &str, bounds: &[u64], value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds.to_vec()))
            .observe(value);
    }

    /// Counter value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram by name, if observed.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Interpolated `(p50, p95, p99)` of histogram `name`, if observed —
    /// the latency-SLO triple baseline snapshots record.
    pub fn percentiles(&self, name: &str) -> Option<(f64, f64, f64)> {
        let h = self.histograms.get(name)?;
        Some((
            h.quantile_interpolated(0.50)?,
            h.quantile_interpolated(0.95)?,
            h.quantile_interpolated(0.99)?,
        ))
    }

    /// A point-in-time copy of the registry.
    pub fn snapshot(&self) -> Self {
        self.clone()
    }

    /// Merge another registry into this one: counters add, gauges take
    /// the other's value, histograms with identical bounds merge
    /// bucket-wise (mismatched bounds take the other's histogram).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) if mine.bounds == h.bounds => {
                    for (a, b) in mine.counts.iter_mut().zip(&h.counts) {
                        *a += b;
                    }
                    mine.count += h.count;
                    mine.sum = mine.sum.saturating_add(h.sum);
                }
                _ => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
    }

    /// Deterministic plain-text rendering: counters, gauges, then
    /// histogram summaries (count/mean/p50/p99), sorted by name.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("counter {k} = {v}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("gauge {k} = {v:.4}\n"));
        }
        for (k, h) in &self.histograms {
            let p50 = h.quantile(0.5).unwrap_or(0);
            let p99 = h.quantile(0.99).unwrap_or(0);
            out.push_str(&format!(
                "hist {k}: count={} mean={:.1} p50<={} p99<={}\n",
                h.count(),
                h.mean(),
                p50,
                p99
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_values_on_inclusive_upper_edges() {
        let mut h = Histogram::new(vec![10, 100, 1000]);
        h.observe(0);
        h.observe(10); // inclusive: lands in bucket 0
        h.observe(11);
        h.observe(100);
        h.observe(1000);
        h.observe(1001); // overflow bucket
        assert_eq!(h.counts(), &[2, 2, 1, 1]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 10 + 11 + 100 + 1000 + 1001);
    }

    #[test]
    fn pow2_histogram_spans_orders_of_magnitude() {
        let mut h = Histogram::pow2(8); // bounds 1,2,4,...,128
        assert_eq!(h.bounds(), &[1, 2, 4, 8, 16, 32, 64, 128]);
        h.observe(1);
        h.observe(3);
        h.observe(128);
        h.observe(129);
        assert_eq!(h.counts(), &[1, 0, 1, 0, 0, 0, 0, 1, 1]);
    }

    #[test]
    fn quantiles_report_bucket_upper_bounds() {
        let mut h = Histogram::new(vec![1, 2, 4, 8]);
        for v in [1, 1, 2, 3, 5, 9] {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(0.5), Some(2));
        assert_eq!(h.quantile(0.75), Some(8)); // rank 5 of 6 → value 5, in (4,8]
        assert_eq!(h.quantile(1.0), Some(u64::MAX)); // 9 overflows the last bound
        assert_eq!(Histogram::pow2(4).quantile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotone_bounds_are_rejected() {
        Histogram::new(vec![10, 10]);
    }

    #[test]
    fn interpolated_quantiles_blend_within_buckets() {
        let mut h = Histogram::new(vec![1, 2, 4, 8]);
        for v in [1, 1, 2, 3, 5, 9] {
            h.observe(v);
        }
        // Counts per bucket: [2, 1, 1, 1, 1(overflow)], total 6.
        // target(0.25) = 1.5 sits 3/4 through bucket 0 (edges 0..1).
        assert!((h.quantile_interpolated(0.25).unwrap() - 0.75).abs() < 1e-12);
        // target(0.5) = 3 lands exactly on bucket 1's cumulative edge:
        // interpolation reaches its upper bound, matching `quantile`.
        assert!((h.quantile_interpolated(0.5).unwrap() - 2.0).abs() < 1e-12);
        // target(0.75) = 4.5 is halfway through bucket (4, 8].
        assert!((h.quantile_interpolated(0.75).unwrap() - 6.0).abs() < 1e-12);
        // q = 0 rides the lower edge of the first non-empty bucket.
        assert_eq!(h.quantile_interpolated(0.0), Some(0.0));
        // The overflow bucket has no upper edge: report the last bound
        // (where `quantile` reports the u64::MAX sentinel instead).
        assert_eq!(h.quantile_interpolated(1.0), Some(8.0));
        assert_eq!(Histogram::pow2(4).quantile_interpolated(0.5), None);
    }

    #[test]
    fn interpolated_quantiles_handle_boundary_and_sparse_buckets() {
        // A single value: every quantile collapses into its bucket.
        let mut h = Histogram::new(vec![10, 100]);
        h.observe(50);
        // Bucket (10, 100] with one observation: target = q for q>0.
        assert!((h.quantile_interpolated(1.0).unwrap() - 100.0).abs() < 1e-12);
        assert!((h.quantile_interpolated(0.5).unwrap() - 55.0).abs() < 1e-12);
        // Empty buckets between observations are skipped, not averaged.
        let mut h = Histogram::new(vec![1, 2, 4, 8]);
        h.observe(1);
        h.observe(8);
        // target(0.5) = 1 lands exactly on bucket 0's edge → bound 1.
        assert!((h.quantile_interpolated(0.5).unwrap() - 1.0).abs() < 1e-12);
        // target(0.75) = 1.5 is halfway through bucket (4, 8].
        assert!((h.quantile_interpolated(0.75).unwrap() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn registry_percentiles_expose_the_slo_triple() {
        let mut r = MetricsRegistry::new();
        assert_eq!(r.percentiles("lat"), None);
        for v in 1..=100u64 {
            r.observe_with("lat", &[25, 50, 75, 100], v);
        }
        let (p50, p95, p99) = r.percentiles("lat").unwrap();
        assert!((p50 - 50.0).abs() < 1e-12, "{p50}");
        assert!((p95 - 95.0).abs() < 1e-12, "{p95}");
        assert!((p99 - 99.0).abs() < 1e-12, "{p99}");
    }

    #[test]
    fn registry_counters_gauges_and_render_are_deterministic() {
        let mut r = MetricsRegistry::new();
        r.inc("b.count", 2);
        r.inc("a.count", 1);
        r.inc("a.count", 1);
        r.set_gauge("occupancy", 0.5);
        r.observe("cycles", 100);
        assert_eq!(r.counter("a.count"), 2);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.gauge("occupancy"), Some(0.5));
        assert_eq!(r.histogram("cycles").unwrap().count(), 1);
        let rendered = r.render();
        let a = rendered.find("a.count").unwrap();
        let b = rendered.find("b.count").unwrap();
        assert!(a < b, "render sorts by name");
        assert_eq!(rendered, r.snapshot().render());
    }

    #[test]
    fn merge_adds_counters_and_buckets() {
        let mut a = MetricsRegistry::new();
        a.inc("n", 1);
        a.observe_with("lat", &[10, 100], 5);
        let mut b = MetricsRegistry::new();
        b.inc("n", 2);
        b.set_gauge("g", 1.0);
        b.observe_with("lat", &[10, 100], 50);
        a.merge(&b);
        assert_eq!(a.counter("n"), 3);
        assert_eq!(a.gauge("g"), Some(1.0));
        let h = a.histogram("lat").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.counts(), &[1, 1, 0]);
    }
}
