//! The event taxonomy: everything the engine decides, as data.
//!
//! Events carry *plan indices* (operator orders are `Vec<usize>`
//! permutations) and raw counts — never references into engine state —
//! so the crate stays dependency-free and a trace outlives the run that
//! produced it.

/// Deterministic position of an event: the emitting lane (worker index,
/// or the coordinator lane), the lane's simulated-cycle clock at
/// emission, and a per-lane ordinal. Host time never appears — two runs
/// of the same deterministic configuration stamp identical values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stamp {
    /// Emitting lane: worker index, or the tracer's coordinator lane.
    pub lane: usize,
    /// The lane's simulated wall-clock position (cycles) at emission.
    pub cycles: u64,
    /// Per-lane emission counter (0, 1, 2, … within the lane).
    pub ordinal: u64,
}

/// One traced event: which query it belongs to, where it happened, and
/// what happened.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Query index within the run (0 for single-query executions).
    pub query: usize,
    /// Deterministic position of the event.
    pub stamp: Stamp,
    /// The event payload.
    pub event: TraceEvent,
}

/// A single argument value, for uniform export (JSON / decision log).
#[derive(Debug, Clone, PartialEq)]
pub enum Arg {
    /// Unsigned count.
    U(u64),
    /// Signed count.
    I(i64),
    /// Ratio or measured rate.
    F(f64),
    /// Flag.
    B(bool),
    /// Free-form label.
    S(String),
    /// An operator order (plan indices).
    Order(Vec<usize>),
    /// Per-socket/per-query share vector.
    Shares(Vec<u64>),
    /// Fitted per-stage values (e.g. selectivities).
    Fs(Vec<f64>),
}

/// The progressive engine's decision taxonomy.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A query entered the batch.
    Admit {
        /// The spec's label.
        label: String,
        /// Priority class label.
        priority: &'static str,
        /// Arrival time in simulated cycles.
        arrival_cycles: u64,
    },
    /// The query was homed on one socket.
    SocketHome {
        /// Home socket.
        socket: usize,
        /// The query's declared hot-set footprint.
        footprint_bytes: u64,
    },
    /// The order cache was consulted for the query's signature.
    CacheLookup {
        /// Whether a template entry was found (and valid).
        hit: bool,
        /// `false` at admission, `true` for the mid-run second chance of
        /// an open-loop later arrival.
        mid_run: bool,
        /// The cached order on a hit.
        order: Option<Vec<usize>>,
    },
    /// A finished query published its converged state to the cache.
    CacheRecord {
        /// Whether the instance had been warm-started.
        warm: bool,
        /// The converged order recorded.
        order: Vec<usize>,
        /// Warm completion diverging from the template's current order.
        diverged: bool,
        /// The divergence streak reached the staleness bound: evicted.
        evicted: bool,
        /// A cold record discarded a non-zero divergence streak — the
        /// formerly silent reset, now observable.
        streak_reset: bool,
    },
    /// A worker claimed and executed one morsel.
    MorselClaim {
        /// Physical socket of the claiming worker.
        socket: usize,
        /// First row of the morsel.
        start_row: usize,
        /// Rows in the morsel.
        rows: usize,
        /// Worker wall-clock position when execution began.
        start_cycles: u64,
        /// Simulated cycles the morsel cost.
        cycles: u64,
        /// Whether the morsel ran under a leased trial order.
        trial: bool,
        /// Epoch the morsel ran under (the lease epoch for trials).
        epoch: u64,
    },
    /// A reoptimization round closed: the estimator fitted the fused
    /// per-worker windows.
    ReoptRound {
        /// Coordination socket the round served.
        socket: usize,
        /// Round number on that socket.
        round: usize,
        /// Fitted per-stage selectivities, in evaluation order.
        selectivities: Vec<f64>,
        /// Final estimator objective (0 = counters matched exactly).
        fit_error: f64,
        /// The proposed order when it differed from the published one
        /// (`None`: the incumbent order was confirmed).
        proposed: Option<Vec<usize>>,
    },
    /// A candidate order was leased to exactly one worker.
    TrialLease {
        /// Coordination socket of the trial.
        socket: usize,
        /// The candidate order.
        order: Vec<usize>,
        /// Cycles-per-tuple the trial must not regress from.
        baseline_cpt: f64,
    },
    /// A trial beat (or matched) the incumbent: accepted and published.
    TrialAccept {
        /// Coordination socket of the trial.
        socket: usize,
        /// The accepted order.
        order: Vec<usize>,
        /// The incumbent's cycles-per-tuple reference.
        baseline_cpt: f64,
        /// The trial morsel's measured cycles-per-tuple.
        trial_cpt: f64,
        /// The epoch the acceptance published.
        epoch: u64,
    },
    /// A trial regressed past tolerance: reverted into rejection memory.
    TrialRevert {
        /// Coordination socket of the trial.
        socket: usize,
        /// The rejected order.
        order: Vec<usize>,
        /// The incumbent's cycles-per-tuple reference.
        baseline_cpt: f64,
        /// The trial morsel's measured cycles-per-tuple.
        trial_cpt: f64,
    },
    /// An order became the published one (acceptance or warm reseed).
    OrderPublish {
        /// Coordination socket publishing.
        socket: usize,
        /// The published order.
        order: Vec<usize>,
        /// The epoch it published under.
        epoch: u64,
        /// `true` when the publication is a cache warm-seed, not a
        /// measured acceptance.
        warm_seed: bool,
    },
    /// LLC capacity was (re)divided among co-running work.
    LlcRepartition {
        /// `"batch"` for the batch-boundary declaration, `"worker"` for
        /// a worker-local dynamic repartition at a drain event.
        scope: &'static str,
        /// `"private"` or `"shared"`.
        mode: &'static str,
        /// Effective shares after the partition: bytes per socket for
        /// batch scope, ways per co-running query for worker scope.
        shares: Vec<u64>,
    },
    /// The query (or run) completed.
    Complete {
        /// Qualifying tuples.
        qualified: u64,
        /// Aggregate sum.
        sum: i64,
        /// Morsels executed.
        morsels: usize,
        /// Wall-clock position at completion.
        wall_cycles: u64,
    },
}

impl TraceEvent {
    /// Stable snake_case name of the event kind (the Chrome-trace event
    /// name; what CI smokes grep for).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Admit { .. } => "admit",
            TraceEvent::SocketHome { .. } => "socket_home",
            TraceEvent::CacheLookup { .. } => "cache_lookup",
            TraceEvent::CacheRecord { .. } => "cache_record",
            TraceEvent::MorselClaim { .. } => "morsel",
            TraceEvent::ReoptRound { .. } => "reopt_round",
            TraceEvent::TrialLease { .. } => "trial_lease",
            TraceEvent::TrialAccept { .. } => "trial_accept",
            TraceEvent::TrialRevert { .. } => "trial_revert",
            TraceEvent::OrderPublish { .. } => "order_publish",
            TraceEvent::LlcRepartition { .. } => "llc_repartition",
            TraceEvent::Complete { .. } => "complete",
        }
    }

    /// Whether the event marks a *decision* (vs. raw execution): what
    /// the explain log renders.
    pub fn is_decision(&self) -> bool {
        !matches!(self, TraceEvent::MorselClaim { .. })
    }

    /// The event's arguments as uniform key/value pairs, for exporters.
    pub fn args(&self) -> Vec<(&'static str, Arg)> {
        match self {
            TraceEvent::Admit {
                label,
                priority,
                arrival_cycles,
            } => vec![
                ("label", Arg::S(label.clone())),
                ("priority", Arg::S((*priority).to_string())),
                ("arrival_cycles", Arg::U(*arrival_cycles)),
            ],
            TraceEvent::SocketHome {
                socket,
                footprint_bytes,
            } => vec![
                ("socket", Arg::U(*socket as u64)),
                ("footprint_bytes", Arg::U(*footprint_bytes)),
            ],
            TraceEvent::CacheLookup {
                hit,
                mid_run,
                order,
            } => {
                let mut args = vec![("hit", Arg::B(*hit)), ("mid_run", Arg::B(*mid_run))];
                if let Some(order) = order {
                    args.push(("order", Arg::Order(order.clone())));
                }
                args
            }
            TraceEvent::CacheRecord {
                warm,
                order,
                diverged,
                evicted,
                streak_reset,
            } => vec![
                ("warm", Arg::B(*warm)),
                ("order", Arg::Order(order.clone())),
                ("diverged", Arg::B(*diverged)),
                ("evicted", Arg::B(*evicted)),
                ("streak_reset", Arg::B(*streak_reset)),
            ],
            TraceEvent::MorselClaim {
                socket,
                start_row,
                rows,
                start_cycles,
                cycles,
                trial,
                epoch,
            } => vec![
                ("socket", Arg::U(*socket as u64)),
                ("start_row", Arg::U(*start_row as u64)),
                ("rows", Arg::U(*rows as u64)),
                ("start_cycles", Arg::U(*start_cycles)),
                ("cycles", Arg::U(*cycles)),
                ("trial", Arg::B(*trial)),
                ("epoch", Arg::U(*epoch)),
            ],
            TraceEvent::ReoptRound {
                socket,
                round,
                selectivities,
                fit_error,
                proposed,
            } => {
                let mut args = vec![
                    ("socket", Arg::U(*socket as u64)),
                    ("round", Arg::U(*round as u64)),
                    ("selectivities", Arg::Fs(selectivities.clone())),
                    ("fit_error", Arg::F(*fit_error)),
                ];
                if let Some(proposed) = proposed {
                    args.push(("proposed", Arg::Order(proposed.clone())));
                }
                args
            }
            TraceEvent::TrialLease {
                socket,
                order,
                baseline_cpt,
            } => vec![
                ("socket", Arg::U(*socket as u64)),
                ("order", Arg::Order(order.clone())),
                ("baseline_cpt", Arg::F(*baseline_cpt)),
            ],
            TraceEvent::TrialAccept {
                socket,
                order,
                baseline_cpt,
                trial_cpt,
                epoch,
            } => vec![
                ("socket", Arg::U(*socket as u64)),
                ("order", Arg::Order(order.clone())),
                ("baseline_cpt", Arg::F(*baseline_cpt)),
                ("trial_cpt", Arg::F(*trial_cpt)),
                ("epoch", Arg::U(*epoch)),
            ],
            TraceEvent::TrialRevert {
                socket,
                order,
                baseline_cpt,
                trial_cpt,
            } => vec![
                ("socket", Arg::U(*socket as u64)),
                ("order", Arg::Order(order.clone())),
                ("baseline_cpt", Arg::F(*baseline_cpt)),
                ("trial_cpt", Arg::F(*trial_cpt)),
            ],
            TraceEvent::OrderPublish {
                socket,
                order,
                epoch,
                warm_seed,
            } => vec![
                ("socket", Arg::U(*socket as u64)),
                ("order", Arg::Order(order.clone())),
                ("epoch", Arg::U(*epoch)),
                ("warm_seed", Arg::B(*warm_seed)),
            ],
            TraceEvent::LlcRepartition {
                scope,
                mode,
                shares,
            } => vec![
                ("scope", Arg::S((*scope).to_string())),
                ("mode", Arg::S((*mode).to_string())),
                ("shares", Arg::Shares(shares.clone())),
            ],
            TraceEvent::Complete {
                qualified,
                sum,
                morsels,
                wall_cycles,
            } => vec![
                ("qualified", Arg::U(*qualified)),
                ("sum", Arg::I(*sum)),
                ("morsels", Arg::U(*morsels as u64)),
                ("wall_cycles", Arg::U(*wall_cycles)),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_unique_and_snake_case() {
        let events = [
            TraceEvent::Admit {
                label: "q".into(),
                priority: "high",
                arrival_cycles: 0,
            },
            TraceEvent::SocketHome {
                socket: 0,
                footprint_bytes: 0,
            },
            TraceEvent::CacheLookup {
                hit: false,
                mid_run: false,
                order: None,
            },
            TraceEvent::CacheRecord {
                warm: false,
                order: vec![0],
                diverged: false,
                evicted: false,
                streak_reset: false,
            },
            TraceEvent::MorselClaim {
                socket: 0,
                start_row: 0,
                rows: 1,
                start_cycles: 0,
                cycles: 1,
                trial: false,
                epoch: 0,
            },
            TraceEvent::ReoptRound {
                socket: 0,
                round: 1,
                selectivities: vec![0.5],
                fit_error: 0.0,
                proposed: None,
            },
            TraceEvent::TrialLease {
                socket: 0,
                order: vec![0],
                baseline_cpt: 1.0,
            },
            TraceEvent::TrialAccept {
                socket: 0,
                order: vec![0],
                baseline_cpt: 1.0,
                trial_cpt: 0.9,
                epoch: 1,
            },
            TraceEvent::TrialRevert {
                socket: 0,
                order: vec![0],
                baseline_cpt: 1.0,
                trial_cpt: 1.5,
            },
            TraceEvent::OrderPublish {
                socket: 0,
                order: vec![0],
                epoch: 1,
                warm_seed: false,
            },
            TraceEvent::LlcRepartition {
                scope: "batch",
                mode: "shared",
                shares: vec![1],
            },
            TraceEvent::Complete {
                qualified: 0,
                sum: 0,
                morsels: 0,
                wall_cycles: 0,
            },
        ];
        let mut seen = std::collections::HashSet::new();
        for e in &events {
            let kind = e.kind();
            assert!(seen.insert(kind), "duplicate kind {kind}");
            assert!(
                kind.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                "{kind} is not snake_case"
            );
            assert!(!e.args().is_empty(), "{kind} must carry arguments");
        }
        assert!(
            events
                .iter()
                .all(|e| e.is_decision() != matches!(e, TraceEvent::MorselClaim { .. })),
            "only morsel claims are non-decisions"
        );
    }
}
