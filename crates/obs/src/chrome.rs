//! Chrome-trace-event JSON export (viewable in Perfetto / chrome://tracing)
//! and a dependency-free JSON validator for smokes and tests.
//!
//! Morsel claims become `"X"` (complete) events — `ts` is the morsel's
//! start position, `dur` its simulated cost, `tid` the worker lane, `pid`
//! the socket — so Perfetto renders per-core timelines in simulated
//! cycles. Decisions become `"i"` (instant) events at their stamp. All
//! serialization is hand-rolled: no serde exists in this workspace.

use crate::event::{Arg, TraceRecord};

/// Escape a string for embedding in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` on f64 never prints exponents for ordinary magnitudes and
        // always round-trips; guard the exotic ones.
        if s.contains('e') || s.contains('E') {
            format!("{v:.6}")
        } else {
            s
        }
    } else {
        // JSON has no NaN/Infinity; encode as null.
        "null".to_string()
    }
}

fn arg_json(arg: &Arg) -> String {
    match arg {
        Arg::U(v) => format!("{v}"),
        Arg::I(v) => format!("{v}"),
        Arg::F(v) => fmt_f64(*v),
        Arg::B(v) => format!("{v}"),
        Arg::S(v) => format!("\"{}\"", escape_json(v)),
        Arg::Order(v) => {
            let items: Vec<String> = v.iter().map(|x| x.to_string()).collect();
            format!("[{}]", items.join(","))
        }
        Arg::Shares(v) => {
            let items: Vec<String> = v.iter().map(|x| x.to_string()).collect();
            format!("[{}]", items.join(","))
        }
        Arg::Fs(v) => {
            let items: Vec<String> = v.iter().map(|x| fmt_f64(*x)).collect();
            format!("[{}]", items.join(","))
        }
    }
}

/// One record as a Chrome trace event object.
pub fn event_json(record: &TraceRecord) -> String {
    use crate::event::TraceEvent;
    let mut args: Vec<String> = vec![
        format!("\"query\":{}", record.query),
        format!("\"ordinal\":{}", record.stamp.ordinal),
    ];
    for (k, v) in record.event.args() {
        args.push(format!("\"{}\":{}", k, arg_json(&v)));
    }
    let args = args.join(",");
    let name = record.event.kind();
    match &record.event {
        TraceEvent::MorselClaim {
            socket,
            start_cycles,
            cycles,
            ..
        } => format!(
            "{{\"name\":\"{name}\",\"ph\":\"X\",\"ts\":{start_cycles},\"dur\":{cycles},\"pid\":{socket},\"tid\":{lane},\"args\":{{{args}}}}}",
            lane = record.stamp.lane,
        ),
        _ => format!(
            "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":0,\"tid\":{lane},\"args\":{{{args}}}}}",
            ts = record.stamp.cycles,
            lane = record.stamp.lane,
        ),
    }
}

/// A full Chrome trace document over the given records. Records are
/// sorted by `(query, cycles, lane, ordinal)` first, so the document is
/// deterministic even when the in-memory sink collected events in
/// host-interleaving order.
pub fn chrome_trace(records: &[TraceRecord]) -> String {
    let mut sorted: Vec<&TraceRecord> = records.iter().collect();
    sorted.sort_by_key(|r| (r.query, r.stamp.cycles, r.stamp.lane, r.stamp.ordinal));
    let events: Vec<String> = sorted.iter().map(|r| event_json(r)).collect();
    format!("{{\"traceEvents\":[{}]}}", events.join(","))
}

/// Validate that `text` is a single well-formed JSON value (recursive
/// descent; no external parser exists in this workspace). Returns the
/// number of bytes consumed on success.
pub fn validate_json(text: &str) -> Result<usize, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(pos)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_lit(b, pos, b"true"),
        Some(b'f') => parse_lit(b, pos, b"false"),
        Some(b'n') => parse_lit(b, pos, b"null"),
        Some(c) if *c == b'-' || c.is_ascii_digit() => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {:?} at {}", *c as char, *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.len() >= *pos + lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') | Some(b'\\') | Some(b'/') | Some(b'b') | Some(b'f')
                    | Some(b'n') | Some(b'r') | Some(b't') => *pos += 1,
                    Some(b'u') => {
                        if b.len() < *pos + 5
                            || !b[*pos + 1..*pos + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return Err(format!("bad \\u escape at byte {}", *pos));
                        }
                        *pos += 5;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
            }
            c if c < 0x20 => return Err(format!("raw control byte in string at {}", *pos)),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_start = *pos;
    while b.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
    }
    if *pos == int_start {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac_start = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        if *pos == frac_start {
            return Err(format!("bad fraction at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e') | Some(b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+') | Some(b'-')) {
            *pos += 1;
        }
        let exp_start = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        if *pos == exp_start {
            return Err(format!("bad exponent at byte {start}"));
        }
    }
    Ok(())
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
                skip_ws(b, pos);
            }
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Stamp, TraceEvent};

    fn morsel_record() -> TraceRecord {
        TraceRecord {
            query: 1,
            stamp: Stamp {
                lane: 2,
                cycles: 500,
                ordinal: 3,
            },
            event: TraceEvent::MorselClaim {
                socket: 1,
                start_row: 1024,
                rows: 1024,
                start_cycles: 400,
                cycles: 100,
                trial: true,
                epoch: 2,
            },
        }
    }

    fn decision_record() -> TraceRecord {
        TraceRecord {
            query: 0,
            stamp: Stamp {
                lane: 0,
                cycles: 42,
                ordinal: 0,
            },
            event: TraceEvent::TrialAccept {
                socket: 0,
                order: vec![1, 0],
                baseline_cpt: 3.5,
                trial_cpt: 2.25,
                epoch: 1,
            },
        }
    }

    #[test]
    fn morsels_are_complete_events_with_socket_pid() {
        let json = event_json(&morsel_record());
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":400"));
        assert!(json.contains("\"dur\":100"));
        assert!(json.contains("\"pid\":1"));
        assert!(json.contains("\"tid\":2"));
        assert!(json.contains("\"trial\":true"));
        validate_json(&json).expect("morsel event is valid JSON");
    }

    #[test]
    fn decisions_are_instant_events_at_their_stamp() {
        let json = event_json(&decision_record());
        assert!(json.contains("\"name\":\"trial_accept\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ts\":42"));
        assert!(json.contains("\"order\":[1,0]"));
        assert!(json.contains("\"baseline_cpt\":3.5"));
        validate_json(&json).expect("decision event is valid JSON");
    }

    #[test]
    fn chrome_trace_sorts_and_validates() {
        let doc = chrome_trace(&[morsel_record(), decision_record()]);
        validate_json(&doc).expect("document is valid JSON");
        let accept = doc.find("trial_accept").unwrap();
        let morsel = doc.find("\"name\":\"morsel\"").unwrap();
        assert!(accept < morsel, "query 0 sorts before query 1");
        validate_json(&chrome_trace(&[])).expect("empty document is valid");
    }

    #[test]
    fn escaping_handles_quotes_and_control_bytes() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
        let rec = TraceRecord {
            query: 0,
            stamp: Stamp {
                lane: 0,
                cycles: 0,
                ordinal: 0,
            },
            event: TraceEvent::Admit {
                label: "scan \"hot\"\n".to_string(),
                priority: "high",
                arrival_cycles: 0,
            },
        };
        validate_json(&event_json(&rec)).expect("escaped label stays valid");
    }

    #[test]
    fn validator_accepts_json_and_rejects_non_json() {
        for good in [
            "null",
            "true",
            "-12.5e3",
            "\"s\"",
            "[]",
            "[1,2,[3]]",
            "{\"a\":{\"b\":[null,false]}}",
            "  { \"x\" : 1 }  ",
        ] {
            validate_json(good).unwrap_or_else(|e| panic!("{good}: {e}"));
        }
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "\"unterminated",
            "01x",
            "nul",
            "{} {}",
            "1.",
            "[1 2]",
            "{\"a\":1,}",
        ] {
            assert!(validate_json(bad).is_err(), "accepted bad JSON: {bad:?}");
        }
    }

    #[test]
    fn non_finite_floats_encode_as_null() {
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        assert_eq!(fmt_f64(0.25), "0.25");
        validate_json(&fmt_f64(1e300)).expect("large floats encode as valid JSON numbers");
    }
}
