//! Property: the NUMA socket topology moves *cycles*, never results.
//!
//! Two guarantees, for random mixed pipelines:
//!
//! * sockets × workers × LLC mode × reopt on/off — execution on a
//!   multi-socket pool (with a placement that homes the probed dimension
//!   on one socket, so remote surcharges really fire) is bit-identical
//!   to the serial single-core executor;
//! * a 1-socket NUMA pool is the flat pre-NUMA pool *exactly*: the whole
//!   [`ParallelReport`] — per-worker cycles included — matches the
//!   `CpuPool::with_mode` run bit-for-bit. (Cycle equality is asserted
//!   without reoptimization: with trials on a multi-worker pool, *which*
//!   rounds run is elastic by design. Result equality is asserted in the
//!   first property for both.)
//!
//! Case count is the vendored proptest default (256), pinnable via the
//! upstream-compatible `PROPTEST_CASES` environment variable.

use proptest::prelude::*;

use popt::core::exec::pipeline::{FilterOp, Pipeline};
use popt::core::parallel::{run_parallel_pipeline, MorselConfig};
use popt::core::predicate::CompareOp;
use popt::core::progressive::ProgressiveConfig;
use popt::cpu::{CpuConfig, CpuPool, LlcMode, NumaPlacement, SimCpu};
use popt::storage::{AddressSpace, ColumnData, Table};
use popt_bench::figures::workload::xorshift64;

const ROWS: usize = 2_048;

/// Fact with value columns and a random FK into a dimension big enough
/// to feel the tiny test hierarchy's LLC, so the placement's remote
/// surcharge prices real memory-served probes while the property demands
/// identical results.
fn tables(seed: u64) -> (Table, Table) {
    let dim_n = ROWS / 2;
    let mut state = seed | 1;
    let mut space = AddressSpace::new();
    let mut fact = Table::new("fact");
    for c in 0..3 {
        let data: Vec<i32> = (0..ROWS)
            .map(|_| (xorshift64(&mut state) % 1000) as i32)
            .collect();
        fact.add_column(format!("val{c}"), ColumnData::I32(data), &mut space);
    }
    fact.add_column(
        "fk",
        ColumnData::I32(
            (0..ROWS)
                .map(|_| (xorshift64(&mut state) % dim_n as u64) as i32)
                .collect(),
        ),
        &mut space,
    );
    let mut dim = Table::new("dim");
    dim.add_column(
        "payload",
        ColumnData::I32(
            (0..dim_n)
                .map(|_| (xorshift64(&mut state) % 1000) as i32)
                .collect(),
        ),
        &mut space,
    );
    (fact, dim)
}

/// Random mixed pipeline: bit `k` of `kinds` picks select vs. join for
/// stage `k`.
fn build<'t>(fact: &'t Table, dim: &'t Table, stages: usize, kinds: u64, lit: i64) -> Pipeline<'t> {
    let mut ops = Vec::new();
    for k in 0..stages {
        let op = if (kinds >> k) & 1 == 1 {
            FilterOp::join_filter(
                fact,
                "fk",
                dim,
                "payload",
                CompareOp::Lt,
                lit,
                k as u32,
                100,
            )
            .expect("join compiles")
        } else {
            FilterOp::select(fact, &format!("val{k}"), CompareOp::Lt, lit, k as u32, 0)
                .expect("select compiles")
        };
        ops.push(op);
    }
    Pipeline::new(ops, fact.rows())
        .expect("pipeline")
        .with_aggregate(fact, "val0")
        .expect("aggregate")
}

proptest! {
    /// Sockets × LLC mode × reopt on/off × workers × morsel sizes: every
    /// combination produces the serial executor's exact bits, even with
    /// a placement that homes the whole probed dimension on the last
    /// socket (maximally remote for every other socket's workers).
    #[test]
    fn numa_topology_never_moves_results(
        stages in 2usize..4,
        kinds in any::<u64>(),
        lit in 100i64..900,
        seed in any::<u64>(),
        workers in 1usize..9,
        morsel_tuples in 128usize..1500,
    ) {
        let (fact, dim) = tables(seed);
        let serial = build(&fact, &dim, stages, kinds, lit);
        let mut cpu = SimCpu::new(CpuConfig::tiny_test());
        let expect = serial.run_range(&mut cpu, 0, ROWS);

        for sockets in [1usize, 2] {
            if sockets > workers {
                continue;
            }
            for mode in [LlcMode::Private, LlcMode::Shared] {
                for progressive in [false, true] {
                    let mut pipeline = build(&fact, &dim, stages, kinds, lit);
                    let mut pool =
                        CpuPool::with_topology(CpuConfig::tiny_test(), workers, mode, sockets);
                    if sockets > 1 {
                        let mut placement = NumaPlacement::interleaved(sockets);
                        let payload = dim.column("payload").expect("dim payload");
                        placement.register(
                            payload.base_addr(),
                            (dim.rows() * 4) as u64,
                            sockets - 1,
                        );
                        pool.set_placement(&placement);
                    }
                    let config = ProgressiveConfig { reop_interval: 2, ..Default::default() };
                    let report = run_parallel_pipeline(
                        &mut pipeline,
                        &(0..stages).collect::<Vec<_>>(),
                        MorselConfig::new(morsel_tuples),
                        &mut pool,
                        progressive.then_some(&config),
                    ).expect("parallel run succeeds");
                    prop_assert_eq!(
                        report.qualified, expect.qualified,
                        "sockets={} mode={:?} workers={} morsel={} progressive={}",
                        sockets, mode, workers, morsel_tuples, progressive
                    );
                    prop_assert_eq!(report.sum, expect.sum);
                    // One published order per socket, all of them valid
                    // permutations the run actually executed under.
                    prop_assert_eq!(report.socket_orders.len(), sockets);
                    if sockets == 1 {
                        prop_assert_eq!(
                            report.remote_access_pct, 0.0,
                            "a single socket has nothing remote"
                        );
                    }
                }
            }
        }
    }

    /// A 1-socket NUMA pool is the flat pre-NUMA pool bit-for-bit: same
    /// results, same per-worker cycles, same counters — the whole report
    /// matches. (Static order: cycle determinism across repeated
    /// multi-worker runs holds without trial scheduling.)
    #[test]
    fn one_socket_pool_is_the_flat_pool_exactly(
        stages in 2usize..4,
        kinds in any::<u64>(),
        lit in 100i64..900,
        seed in any::<u64>(),
        workers in 1usize..9,
        morsel_tuples in 128usize..1500,
    ) {
        let (fact, dim) = tables(seed);
        for mode in [LlcMode::Private, LlcMode::Shared] {
            let order: Vec<usize> = (0..stages).collect();
            let mut flat_pipeline = build(&fact, &dim, stages, kinds, lit);
            let mut flat_pool = CpuPool::with_mode(CpuConfig::tiny_test(), workers, mode);
            let flat = run_parallel_pipeline(
                &mut flat_pipeline,
                &order,
                MorselConfig::new(morsel_tuples),
                &mut flat_pool,
                None,
            ).expect("flat run succeeds");

            let mut numa_pipeline = build(&fact, &dim, stages, kinds, lit);
            let mut numa_pool = CpuPool::with_topology(CpuConfig::tiny_test(), workers, mode, 1);
            let numa = run_parallel_pipeline(
                &mut numa_pipeline,
                &order,
                MorselConfig::new(morsel_tuples),
                &mut numa_pool,
                None,
            ).expect("1-socket run succeeds");

            prop_assert_eq!(
                &numa, &flat,
                "mode={:?} workers={} morsel={}",
                mode, workers, morsel_tuples
            );
        }
    }
}
