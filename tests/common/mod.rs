//! Helpers shared by the integration-test binaries.

use popt::cpu::{CacheLevelConfig, CpuConfig};

/// A deliberately small hierarchy (4 KiB L1 / 16 KiB L2 / 64 KiB LLC) so
/// that modest dimension tables thrash the LLC under random probes at
/// test-friendly row counts.
pub fn small_cache_cpu() -> CpuConfig {
    let mut cfg = CpuConfig::xeon_e5_2630_v2();
    cfg.levels = vec![
        CacheLevelConfig {
            capacity_bytes: 4 * 1024,
            line_bytes: 64,
            ways: 8,
            hit_latency_cycles: 0,
        },
        CacheLevelConfig {
            capacity_bytes: 16 * 1024,
            line_bytes: 64,
            ways: 8,
            hit_latency_cycles: 10,
        },
        CacheLevelConfig {
            capacity_bytes: 64 * 1024,
            line_bytes: 64,
            ways: 16,
            hit_latency_cycles: 30,
        },
    ];
    cfg
}
