//! Cross-crate integration: the Section 4.5 hazards — skewed value drift
//! and correlated attributes — against the progressive optimizer.

use popt::core::plan::SelectionPlan;
use popt::core::predicate::{CompareOp, Predicate};
use popt::core::progressive::{run_baseline, run_progressive, ProgressiveConfig, VectorConfig};
use popt::cpu::{CpuConfig, SimCpu};
use popt::storage::distribution::correlated_pair;
use popt::storage::{AddressSpace, ColumnData, Table};

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A table whose selectivity relationship *flips* halfway through: in the
/// first half column `a` is the selective one, in the second half `b`.
fn drift_table(rows: usize) -> Table {
    let half = rows / 2;
    let mut space = AddressSpace::new();
    let mut t = Table::new("drift");
    let a: Vec<i32> = (0..rows)
        .map(|i| {
            let r = (splitmix(i as u64 ^ 0xA) % 1000) as i32;
            if i < half {
                r / 10 // 0..100 of 1000: predicate `< 100` passes ~100%... keep raw
            } else {
                r
            }
        })
        .collect();
    let b: Vec<i32> = (0..rows)
        .map(|i| {
            let r = (splitmix(i as u64 ^ 0xB) % 1000) as i32;
            if i < half {
                r
            } else {
                r / 10
            }
        })
        .collect();
    t.add_column("a", ColumnData::I32(a), &mut space);
    t.add_column("b", ColumnData::I32(b), &mut space);
    t
}

#[test]
fn selectivity_drift_triggers_mid_query_reordering() {
    // Predicates `a < 50`, `b < 50`: in the first half `a < 50` passes
    // ~50% (values 0..100) and `b < 50` ~5%; in the second half the roles
    // swap. The optimal PEO flips at the midpoint.
    let rows = 1 << 18;
    let t = drift_table(rows);
    let plan = SelectionPlan::new(
        vec![
            Predicate::new("a", CompareOp::Lt, 50),
            Predicate::new("b", CompareOp::Lt, 50),
        ],
        vec![],
    )
    .unwrap();
    let vectors = VectorConfig {
        vector_tuples: 8_192,
        max_vectors: None,
    };
    let config = ProgressiveConfig {
        reop_interval: 2,
        ..Default::default()
    };

    let mut cpu = SimCpu::new(CpuConfig::ivy_bridge());
    let prog = run_progressive(&t, &plan, &[0, 1], vectors, &mut cpu, &config).unwrap();
    // First half: `a` is dilute (0..100) so `a<50` passes ~50% while
    // `b<50` passes ~5% — optimal order [1,0]. Second half: roles swap —
    // optimal order [0,1]. The run must switch and end on [0,1].
    assert!(
        prog.switches.iter().any(|s| !s.reverted),
        "{:?}",
        prog.switches
    );
    assert_eq!(prog.final_peo, vec![0, 1], "{:?}", prog.switches);

    // And it must beat both static orders.
    for peo in [[0usize, 1], [1, 0]] {
        let mut cpu = SimCpu::new(CpuConfig::ivy_bridge());
        let base = run_baseline(&t, &plan, &peo, vectors, &mut cpu).unwrap();
        assert_eq!(base.qualified, prog.qualified);
        assert!(
            prog.cycles < base.cycles,
            "static {peo:?}: {} cycles, progressive {}",
            base.cycles,
            prog.cycles
        );
    }
}

#[test]
fn correlated_predicates_do_not_thrash_the_optimizer() {
    // Two predicates on (almost) the same values: conditional selectivity
    // of the second is near 1 whichever runs first, so reordering cannot
    // help. The optimizer must settle instead of paying an endless
    // sequence of trial-and-revert vectors (the rejection memory of
    // ProgressiveConfig::rejection_ttl).
    let rows = 1 << 17;
    let (a, b) = correlated_pair(rows, 1000, 5, 0xC0DE);
    let mut space = AddressSpace::new();
    let mut t = Table::new("corr");
    t.add_column("a", ColumnData::I32(a), &mut space);
    t.add_column("b", ColumnData::I32(b), &mut space);
    let plan = SelectionPlan::new(
        vec![
            Predicate::new("a", CompareOp::Lt, 300),
            Predicate::new("b", CompareOp::Lt, 320),
        ],
        vec![],
    )
    .unwrap();
    let vectors = VectorConfig {
        vector_tuples: 8_192,
        max_vectors: None,
    };
    let config = ProgressiveConfig {
        reop_interval: 2,
        ..Default::default()
    };
    let mut cpu = SimCpu::new(CpuConfig::ivy_bridge());
    let prog = run_progressive(&t, &plan, &[0, 1], vectors, &mut cpu, &config).unwrap();

    let reverted = prog.switches.iter().filter(|s| s.reverted).count();
    assert!(
        reverted <= prog.estimates / 2 + 1,
        "thrashing: {reverted} reverted switches over {} estimates",
        prog.estimates
    );

    // Cost must stay close to the better static order.
    let mut cpu = SimCpu::new(CpuConfig::ivy_bridge());
    let base = run_baseline(&t, &plan, &[0, 1], vectors, &mut cpu).unwrap();
    assert!(
        (prog.cycles as f64) < base.cycles as f64 * 1.25,
        "progressive {} vs static {}",
        prog.cycles,
        base.cycles
    );
}

#[test]
fn exploration_is_stall_gated() {
    // Exploration (Section 4.5) only fires when optimization stalls —
    // i.e. proposals keep getting rejected. A continuously converging
    // workload must never pay for it; a correlated workload that causes
    // estimator/measurement disagreement may probe alternate orders, but
    // must stay within a modest premium of the static plan.
    let rows = 1 << 17;
    let vectors = VectorConfig {
        vector_tuples: 8_192,
        max_vectors: None,
    };
    let config = ProgressiveConfig {
        reop_interval: 2,
        ..Default::default()
    };
    assert!(config.explore_correlation, "exploration is on by default");

    // Converging workload: no exploratory switches at all.
    let t = drift_table(rows);
    let plan = SelectionPlan::new(
        vec![
            Predicate::new("a", CompareOp::Lt, 50),
            Predicate::new("b", CompareOp::Lt, 50),
        ],
        vec![],
    )
    .unwrap();
    let mut cpu = SimCpu::new(CpuConfig::ivy_bridge());
    let converging = run_progressive(&t, &plan, &[0, 1], vectors, &mut cpu, &config).unwrap();
    assert!(
        converging.switches.iter().all(|s| !s.exploratory),
        "{:?}",
        converging.switches
    );

    // Correlated workload: whether or not exploration fires, the run must
    // stay near the static cost and produce the exact answer.
    let (a, b) = correlated_pair(rows, 1000, 5, 0xC0DE);
    let mut space = AddressSpace::new();
    let mut t = Table::new("corr");
    t.add_column("a", ColumnData::I32(a), &mut space);
    t.add_column("b", ColumnData::I32(b), &mut space);
    let plan = SelectionPlan::new(
        vec![
            Predicate::new("a", CompareOp::Lt, 300),
            Predicate::new("b", CompareOp::Lt, 320),
        ],
        vec![],
    )
    .unwrap();
    let mut cpu = SimCpu::new(CpuConfig::ivy_bridge());
    let with = run_progressive(&t, &plan, &[0, 1], vectors, &mut cpu, &config).unwrap();
    let mut cpu = SimCpu::new(CpuConfig::ivy_bridge());
    let base = run_baseline(&t, &plan, &[0, 1], vectors, &mut cpu).unwrap();
    assert_eq!(with.qualified, base.qualified);
    assert!((with.cycles as f64) < base.cycles as f64 * 1.3);
}
