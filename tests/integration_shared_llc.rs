//! Integration tests for the shared-LLC socket model: the deterministic
//! capacity partition slows workloads whose hot sets outgrow their
//! share, leaves share-resident workloads untouched, degenerates to the
//! private model on one core, flips the cost model's operator ranking
//! under contention — and never, in any mode, moves a query result.

use popt::core::exec::pipeline::{FilterOp, Pipeline};
use popt::core::exec::scan::CompiledSelection;
use popt::core::parallel::{run_parallel_pipeline, MorselConfig};
use popt::core::plan::{order_by_cost_per_tuple, SelectionPlan};
use popt::core::predicate::{CompareOp, Predicate};
use popt::core::serve::{Priority, QueryServer, QuerySpec, ServeConfig};
use popt::cost::cycles::{stage_costs_per_input_tuple, CycleParams};
use popt::cpu::{CpuPool, LlcMode, SimCpu};
use popt::storage::Table;
use popt_bench::figures::workload::{literal_for, mem_tables_with_dim};

mod common;
use common::small_cache_cpu;

const ROWS: usize = 1 << 16;

/// Fact with a value column and a random FK into a dimension of
/// `dim_rows` tuples — the dimension size is the contention knob against
/// the small test hierarchy's 64 KiB LLC (16 KiB 4-worker share).
fn tables(dim_rows: usize, seed: u64) -> (Table, Table) {
    mem_tables_with_dim(ROWS, dim_rows, seed)
}

fn build<'t>(fact: &'t Table, dim: &'t Table) -> Pipeline<'t> {
    let half = literal_for(0.5);
    let sel = FilterOp::select(fact, "val", CompareOp::Lt, half, 0, 50).unwrap();
    let join =
        FilterOp::join_filter(fact, "fk", dim, "payload", CompareOp::Lt, half, 1, 100).unwrap();
    Pipeline::new(vec![sel, join], fact.rows()).unwrap()
}

fn wall_cycles(fact: &Table, dim: &Table, workers: usize, mode: LlcMode) -> (u64, (u64, i64)) {
    let mut pipeline = build(fact, dim);
    let mut pool = CpuPool::with_mode(small_cache_cpu(), workers, mode);
    let report = run_parallel_pipeline(
        &mut pipeline,
        &[0, 1],
        MorselConfig::new(1024),
        &mut pool,
        None, // baseline: fully deterministic per-core cycles
    )
    .unwrap();
    (report.wall_cycles, (report.qualified, report.sum))
}

/// A dimension that fits the socket (48 KiB < 64 KiB) but not a 4-worker
/// share (16 KiB): identical results, measurably more wall cycles.
#[test]
fn thrashing_workload_pays_for_the_shared_socket() {
    let (fact, dim) = tables(12 * 1024, 0x7A5);
    let (private, private_result) = wall_cycles(&fact, &dim, 4, LlcMode::Private);
    let (shared, shared_result) = wall_cycles(&fact, &dim, 4, LlcMode::Shared);
    assert_eq!(
        private_result, shared_result,
        "contention moves cycles, never results"
    );
    assert!(
        shared as f64 > private as f64 * 1.2,
        "socket contention must cost: shared {shared} !> 1.2x private {private}"
    );
}

/// A dimension resident in even the smallest share (2 KiB vs 8 KiB at 8
/// workers): the partition is free.
#[test]
fn share_resident_workload_pays_nothing() {
    let (fact, dim) = tables(512, 0x7A6);
    let (private, private_result) = wall_cycles(&fact, &dim, 4, LlcMode::Private);
    let (shared, shared_result) = wall_cycles(&fact, &dim, 4, LlcMode::Shared);
    assert_eq!(private_result, shared_result);
    let drift = (shared as f64 - private as f64).abs() / private as f64;
    assert!(
        drift < 0.02,
        "share-resident workload must not feel the partition: \
         shared {shared} vs private {private} ({:.2}% drift)",
        drift * 100.0
    );
}

/// One core on a shared socket *is* the private model: the lone occupant
/// keeps the full capacity, so the simulated cycles match exactly.
#[test]
fn single_core_shared_socket_matches_private_exactly() {
    let (fact, dim) = tables(12 * 1024, 0x7A7);
    let (private, private_result) = wall_cycles(&fact, &dim, 1, LlcMode::Private);
    let (shared, shared_result) = wall_cycles(&fact, &dim, 1, LlcMode::Shared);
    assert_eq!(private_result, shared_result);
    assert_eq!(
        private, shared,
        "a lone occupant keeps the whole socket (1 core = full capacity)"
    );
}

/// The cost model re-ranks operators under contention: a probe into a
/// dimension resident in the full LLC is cheap (probe-first wins), but
/// the same probe against a contended share pays Equation-1 misses and
/// an expensive selection overtakes it (selection-first wins). This is
/// the signal that lets the progressive reoptimizer flip orders when a
/// co-runner steals capacity.
#[test]
fn contended_capacity_flips_the_operator_ranking() {
    let cfg = small_cache_cpu();
    let (fact, dim) = tables(12 * 1024, 0x7A8); // 48 KiB dim
    let half = literal_for(0.5);
    let sel = FilterOp::select(&fact, "val", CompareOp::Lt, half, 0, 120).unwrap();
    let join =
        FilterOp::join_filter(&fact, "fk", &dim, "payload", CompareOp::Lt, half, 1, 100).unwrap();
    let pipeline = Pipeline::new(vec![sel, join], fact.rows()).unwrap();
    let params = CycleParams::default();
    let selectivities = [0.5, 0.5];
    let rank = |llc_bytes: u64| {
        let geom = pipeline.plan_geometry(ROWS as u64, &cfg, llc_bytes, &[1.0, 1.0]);
        let costs = stage_costs_per_input_tuple(
            &geom,
            &pipeline.stage_instructions(),
            &selectivities,
            &params,
        );
        order_by_cost_per_tuple(pipeline.order(), &costs, &selectivities)
    };
    let full = cfg.llc().capacity_bytes;
    assert_eq!(
        rank(full),
        vec![1, 0],
        "resident probe is cheaper than a 120-instruction selection"
    );
    assert_eq!(
        rank(full / 4),
        vec![0, 1],
        "a contended share makes the probe miss and the selection win"
    );
}

/// Serving a mixed batch on a shared socket: per-query results stay
/// bit-identical to solo single-core execution.
#[test]
fn serve_on_shared_socket_is_bit_identical() {
    let (fact, dim) = tables(12 * 1024, 0x7A9);
    let plan = SelectionPlan::new(
        vec![
            Predicate::new("val", CompareOp::Lt, literal_for(0.3)),
            Predicate::new("fk", CompareOp::Ge, 10),
        ],
        vec!["val".into()],
    )
    .unwrap();
    let mut cpu = SimCpu::new(small_cache_cpu());
    let scan_ref = CompiledSelection::compile(&fact, &plan, &[1, 0])
        .unwrap()
        .run_range(&mut cpu, 0, ROWS);
    let mut cpu = SimCpu::new(small_cache_cpu());
    let pipe_ref = build(&fact, &dim).run_range(&mut cpu, 0, ROWS);

    let mut server = QueryServer::new(ServeConfig::default());
    server.admit(QuerySpec::scan(
        "scan",
        &fact,
        plan.clone(),
        vec![1, 0],
        Priority::High,
        0,
    ));
    server.admit(QuerySpec::pipeline(
        "pipe",
        build(&fact, &dim),
        vec![1, 0],
        Priority::Low,
        0,
    ));
    let mut pool = CpuPool::new_shared(small_cache_cpu(), 4);
    let report = server.run(&mut pool).unwrap();
    assert_eq!(report.queries[0].qualified, scan_ref.qualified);
    assert_eq!(report.queries[0].sum, scan_ref.sum);
    assert_eq!(report.queries[1].qualified, pipe_ref.qualified);
    assert_eq!(report.queries[1].sum, pipe_ref.sum);
    // The batch's aggregate footprint really contended the socket.
    let full = small_cache_cpu().llc().capacity_bytes;
    assert!(pool.min_effective_llc_bytes() < full);
}
