//! Integration tests for the query frontend: [`PlanBuilder`] → static
//! optimizer passes → [`CompiledProgram`] → the progressive, parallel,
//! and serving runtimes. The compiled form must be a drop-in for the
//! boxed pipeline executor — same results, same simulated CPU events —
//! and its literal-free template signature must warm the order cache
//! across sliding parameters.

use popt::core::exec::pipeline::{FilterOp, Pipeline};
use popt::core::parallel::{run_parallel_pipeline, run_parallel_program, MorselConfig};
use popt::core::plan::{passes, Expr, PassRegistry, PlanBuilder};
use popt::core::predicate::CompareOp;
use popt::core::progressive::{
    run_progressive_pipeline, run_progressive_program, ProgressiveConfig, VectorConfig,
};
use popt::core::serve::{Priority, QueryServer, QuerySpec, ServeConfig};
use popt::cpu::{CpuConfig, CpuPool, SimCpu};
use popt::storage::{AddressSpace, ColumnData, Table};
use popt_bench::figures::workload::xorshift64;

const ROWS: usize = 1 << 14;

/// Fact with two value columns and an FK into a payload dimension,
/// uniform over 0..1000 so literals address selectivity directly.
fn tables(seed: u64) -> (Table, Table) {
    let dim_n = ROWS / 4;
    let mut state = seed | 1;
    let mut space = AddressSpace::new();
    let mut fact = Table::new("fact");
    for c in 0..2 {
        let data: Vec<i32> = (0..ROWS)
            .map(|_| (xorshift64(&mut state) % 1000) as i32)
            .collect();
        fact.add_column(format!("val{c}"), ColumnData::I32(data), &mut space);
    }
    fact.add_column(
        "fk",
        ColumnData::I32(
            (0..ROWS)
                .map(|_| (xorshift64(&mut state) % dim_n as u64) as i32)
                .collect(),
        ),
        &mut space,
    );
    let mut dim_space = AddressSpace::new();
    let mut dim = Table::new("dim");
    dim.add_column(
        "payload",
        ColumnData::I32(
            (0..dim_n)
                .map(|_| (xorshift64(&mut state) % 1000) as i32)
                .collect(),
        ),
        &mut dim_space,
    );
    (fact, dim)
}

fn program<'t>(
    fact: &'t Table,
    dim: &'t Table,
    lit: i64,
) -> popt::core::exec::program::CompiledProgram<'t> {
    PlanBuilder::scan(fact)
        .filter_costed(Expr::col("val0").less_than(lit), 30)
        .join(dim, "fk", Expr::col("payload").less_than(lit))
        .aggregate("val1")
        .build()
        .optimize()
        .compile()
        .expect("plan lowers to a two-stage program")
}

fn pipeline<'t>(fact: &'t Table, dim: &'t Table, lit: i64) -> Pipeline<'t> {
    let sel = FilterOp::select(fact, "val0", CompareOp::Lt, lit, 0, 30).unwrap();
    let join =
        FilterOp::join_filter(fact, "fk", dim, "payload", CompareOp::Lt, lit, 1, 100).unwrap();
    Pipeline::new(vec![sel, join], fact.rows())
        .unwrap()
        .with_aggregate(fact, "val1")
        .unwrap()
}

/// The compiled frontend program drives the same CPU events as the
/// hand-chained boxed pipeline: identical results *and* identical
/// counters, solo, progressively reoptimized, and morsel-parallel.
#[test]
fn frontend_program_is_a_drop_in_for_the_boxed_pipeline() {
    let (fact, dim) = tables(0xF60);

    // Solo: bit-identical counters and cycles.
    let prog = program(&fact, &dim, 500);
    let pipe = pipeline(&fact, &dim, 500);
    let mut c1 = SimCpu::new(CpuConfig::tiny_test());
    let a = prog.run_range(&mut c1, 0, ROWS);
    let mut c2 = SimCpu::new(CpuConfig::tiny_test());
    let b = pipe.run_range(&mut c2, 0, ROWS);
    assert_eq!(a.qualified, b.qualified);
    assert_eq!(a.sum, b.sum);
    assert_eq!(a.counters, b.counters, "bit-identical CPU events");
    assert_eq!(c1.counters().cycles, c2.counters().cycles);

    // Progressive: same convergence trajectory from the same start.
    let reopt = ProgressiveConfig {
        reop_interval: 3,
        ..Default::default()
    };
    let vectors = VectorConfig {
        vector_tuples: 1024,
        max_vectors: None,
    };
    let mut prog = program(&fact, &dim, 500);
    let mut cpu = SimCpu::new(CpuConfig::tiny_test());
    let via_program =
        run_progressive_program(&mut prog, &[1, 0], vectors, &mut cpu, &reopt).unwrap();
    let mut pipe = pipeline(&fact, &dim, 500);
    let mut cpu = SimCpu::new(CpuConfig::tiny_test());
    let via_pipeline =
        run_progressive_pipeline(&mut pipe, &[1, 0], vectors, &mut cpu, &reopt).unwrap();
    assert_eq!(via_program.qualified, via_pipeline.qualified);
    assert_eq!(via_program.sum, via_pipeline.sum);
    assert_eq!(via_program.final_peo, via_pipeline.final_peo);
    assert_eq!(
        via_program.cycles, via_pipeline.cycles,
        "same simulated cost"
    );

    // Morsel-parallel with shared reoptimization: same results at every
    // worker count. (Wall cycles are not compared: morsel→worker
    // assignment follows host thread timing, so only the *results* are
    // deterministic across runs.)
    for workers in [1usize, 2, 4] {
        let mut prog = program(&fact, &dim, 500);
        let mut pool = CpuPool::new(CpuConfig::tiny_test(), workers);
        let p = run_parallel_program(
            &mut prog,
            &[1, 0],
            MorselConfig::new(1024),
            &mut pool,
            Some(&reopt),
        )
        .unwrap();
        let mut pipe = pipeline(&fact, &dim, 500);
        let mut pool = CpuPool::new(CpuConfig::tiny_test(), workers);
        let q = run_parallel_pipeline(
            &mut pipe,
            &[1, 0],
            MorselConfig::new(1024),
            &mut pool,
            Some(&reopt),
        )
        .unwrap();
        assert_eq!(p.qualified, q.qualified, "workers={workers}");
        assert_eq!(p.sum, q.sum);
    }
}

/// The standard pass registry is result-preserving and never raises a
/// node's estimated input cardinality; lowering performs the same
/// normalization itself, so skipping the passes changes nothing about
/// the answer.
#[test]
fn optimizer_passes_preserve_results_and_lower_estimates() {
    let (fact, dim) = tables(0xF61);
    // A deliberately messy plan: a tautology, a join whose condition
    // smuggles a fact-side conjunct, and a filter *after* the join.
    let build = || {
        PlanBuilder::scan(&fact)
            .filter(Expr::lit(1).less_than(2))
            .join(
                &dim,
                "fk",
                Expr::col("payload")
                    .less_than(500)
                    .and(Expr::col("val0").less_than(800)),
            )
            .filter(Expr::col("val1").at_least(100))
            .aggregate("val1")
            .build()
    };

    let raw = build();
    let optimized = build().optimize();
    // Pushdown + extraction put both fact filters before the join.
    assert!(!optimized.nodes()[0].is_join());
    assert!(!optimized.nodes()[1].is_join());
    assert!(optimized.nodes()[2].is_join());
    let before = raw.input_estimates();
    let after = build().optimize().input_estimates();
    for (k, (b, a)) in before.iter().zip(&after).enumerate() {
        assert!(a <= b, "position {k}: estimate rose {b} -> {a}");
    }

    let unopt = raw.compile().expect("lowering normalizes on its own");
    let opt = optimized.compile().expect("optimized plan lowers");
    assert_eq!(unopt.len(), opt.len(), "same conjuncts, different order");
    let mut c1 = SimCpu::new(CpuConfig::tiny_test());
    let mut c2 = SimCpu::new(CpuConfig::tiny_test());
    let u = unopt.run_range(&mut c1, 0, ROWS);
    let o = opt.run_range(&mut c2, 0, ROWS);
    assert_eq!(u.qualified, o.qualified);
    assert_eq!(u.sum, o.sum);

    // A custom registry composes the same passes in a different order
    // and still agrees.
    let custom = PassRegistry::empty()
        .with("pushdown", passes::filter_pushdown)
        .with("folding", passes::constant_folding)
        .with("extraction", passes::join_condition_extraction)
        .with("pruning", passes::projection_pruning);
    let reordered = custom.run(build()).compile().unwrap();
    let mut c3 = SimCpu::new(CpuConfig::tiny_test());
    let r = reordered.run_range(&mut c3, 0, ROWS);
    assert_eq!(r.qualified, o.qualified);
    assert_eq!(r.sum, o.sum);
}

/// Parameterized templates through the serving layer: a compiled plan
/// whose literal slides between arrivals warm-hits its template's cache
/// entry; a structural change misses; and a hand-built pipeline of the
/// same shape shares the template (the signature is representation-
/// agnostic).
#[test]
fn compiled_templates_warm_across_sliding_literals() {
    let (fact, dim) = tables(0xF62);
    let config = ServeConfig {
        morsels: MorselConfig::new(1024),
        reopt: Some(ProgressiveConfig {
            reop_interval: 3,
            ..Default::default()
        }),
        use_order_cache: true,
        dynamic_repartition: false,
    };
    let spec = |label: &str, lit: i64| {
        let plan = PlanBuilder::scan(&fact)
            .filter_costed(Expr::col("val0").less_than(lit), 30)
            .join(&dim, "fk", Expr::col("payload").less_than(lit))
            .aggregate("val1")
            .build();
        QuerySpec::from_plan(label, plan, Priority::Normal, 0).expect("plan lowers")
    };

    let mut server = QueryServer::new(config);
    server.admit(spec("q-500", 500));
    let mut pool = CpuPool::new(CpuConfig::tiny_test(), 2);
    let cold = server.run(&mut pool).unwrap();
    assert!(!cold.queries[0].warm_start, "first sighting is cold");
    assert_eq!(server.cache().len(), 1);

    // Slide the literal: same template, warm start, and the answer is
    // still computed with the *new* literal.
    server.admit(spec("q-250", 250));
    let warm = server.run(&mut pool).unwrap();
    assert!(
        warm.queries[0].warm_start,
        "a slid literal must reuse the template's converged state"
    );
    assert_eq!(server.cache().len(), 1, "still one template");
    let solo = {
        let prog = program(&fact, &dim, 250);
        let mut cpu = SimCpu::new(CpuConfig::tiny_test());
        prog.run_range(&mut cpu, 0, ROWS)
    };
    assert_eq!(warm.queries[0].qualified, solo.qualified);
    assert_eq!(warm.queries[0].sum, solo.sum);

    // Structure change (operator flip) is a new template: cold.
    let restructured = PlanBuilder::scan(&fact)
        .filter_costed(Expr::col("val0").at_least(500), 30)
        .join(&dim, "fk", Expr::col("payload").less_than(500))
        .aggregate("val1")
        .build();
    server
        .admit(QuerySpec::from_plan("q-restructured", restructured, Priority::Normal, 0).unwrap());
    let changed = server.run(&mut pool).unwrap();
    assert!(!changed.queries[0].warm_start, "operator flip must miss");
    assert_eq!(server.cache().len(), 2);

    // A hand-chained pipeline with the original shape maps to the same
    // template and warms from the compiled queries' converged state.
    server.admit(QuerySpec::pipeline(
        "q-boxed",
        pipeline(&fact, &dim, 750),
        vec![0, 1],
        Priority::Normal,
        0,
    ));
    let boxed = server.run(&mut pool).unwrap();
    assert!(
        boxed.queries[0].warm_start,
        "the signature is representation-agnostic"
    );
    assert_eq!(server.cache().len(), 2);
}

/// `QuerySpec::compiled` starts from the program's *current* order, so a
/// caller can pick a deliberate (e.g. textbook) starting order by
/// reordering before admission — and a failed reorder can never corrupt
/// it, because rejected permutations leave the order untouched.
#[test]
fn compiled_specs_honor_the_submitted_order() {
    let (fact, dim) = tables(0xF63);
    let mut prog = program(&fact, &dim, 500);
    prog.reorder(&[1, 0]).unwrap();
    assert!(prog.reorder(&[0, 0]).is_err());
    assert!(prog.reorder(&[0, 1, 2]).is_err());
    assert_eq!(prog.order(), &[1, 0], "rejected orders leave no trace");

    let mut server = QueryServer::new(ServeConfig {
        morsels: MorselConfig::new(1024),
        reopt: None,
        use_order_cache: false,
        dynamic_repartition: false,
    });
    server.admit(QuerySpec::compiled("q", prog, Priority::Normal, 0));
    let mut pool = CpuPool::new(CpuConfig::tiny_test(), 2);
    let report = server.run(&mut pool).unwrap();
    assert_eq!(
        report.queries[0].final_order,
        vec![1, 0],
        "a static run keeps the submitted order"
    );
    let solo = {
        let prog = program(&fact, &dim, 500);
        let mut cpu = SimCpu::new(CpuConfig::tiny_test());
        prog.run_range(&mut cpu, 0, ROWS)
    };
    assert_eq!(report.queries[0].qualified, solo.qualified);
    assert_eq!(report.queries[0].sum, solo.sum);
}
