//! Cross-crate integration: morsel-driven parallel execution with shared
//! progressive reoptimization.
//!
//! The acceptance bar: for any worker count and morsel size the parallel
//! executor returns bit-identical `qualified`/`sum` to the single-core
//! executor; with progressive reoptimization enabled it converges to the
//! same operator order the serial loop finds; and four workers deliver a
//! ≥ 2.5× wall-clock speedup over one on the Figure-14-style workload.

use popt::core::exec::pipeline::{FilterOp, Pipeline};
use popt::core::parallel::{run_parallel_pipeline, run_parallel_scan, MorselConfig};
use popt::core::plan::SelectionPlan;
use popt::core::predicate::{CompareOp, Predicate};
use popt::core::progressive::{
    run_baseline, run_progressive_pipeline, ProgressiveConfig, VectorConfig,
};
use popt::cpu::{CpuConfig, CpuPool, SimCpu};
use popt::storage::{AddressSpace, ColumnData, Table};
use popt_bench::figures::workload::{fig14_mem_tables, xorshift64, DOMAIN};

mod common;
use common::small_cache_cpu;

const ROWS: usize = 1 << 17;

/// Three-predicate scan table with very different selectivities
/// (5% / 50% / 95% over the shared workload domain).
fn scan_table(n: usize) -> (Table, SelectionPlan) {
    let mut space = AddressSpace::new();
    let mut t = Table::new("t");
    let mut state = 0xC0FFEEu64 | 1;
    for name in ["lo", "mid", "hi"] {
        let data: Vec<i32> = (0..n)
            .map(|_| (xorshift64(&mut state) % DOMAIN as u64) as i32)
            .collect();
        t.add_column(name, ColumnData::I32(data), &mut space);
    }
    t.add_column("agg", ColumnData::I32(vec![3; n]), &mut space);
    let plan = SelectionPlan::new(
        vec![
            Predicate::new("lo", CompareOp::Lt, DOMAIN / 20),
            Predicate::new("mid", CompareOp::Lt, DOMAIN / 2),
            Predicate::new("hi", CompareOp::Lt, DOMAIN * 19 / 20),
        ],
        vec!["agg".into()],
    )
    .unwrap();
    (t, plan)
}

/// Expensive selection + fully random FK probe into an LLC-thrashing
/// dimension (the fig14 "Mem" workload) — selection-first is optimal.
fn build_pipeline<'t>(fact: &'t Table, dim: &'t Table) -> Pipeline<'t> {
    let sel = FilterOp::select(fact, "val", CompareOp::Lt, DOMAIN / 2, 0, 50).unwrap();
    let join = FilterOp::join_filter(
        fact,
        "fk",
        dim,
        "payload",
        CompareOp::Lt,
        DOMAIN / 2,
        1,
        100,
    )
    .unwrap();
    Pipeline::new(vec![sel, join], fact.rows())
        .unwrap()
        .with_aggregate(fact, "val")
        .unwrap()
}

#[test]
fn parallel_scan_is_bit_identical_to_serial_for_any_worker_count() {
    let n = 1 << 15;
    let (t, plan) = scan_table(n);
    let peo = [2usize, 1, 0];
    let mut serial_cpu = SimCpu::new(CpuConfig::ivy_bridge());
    let serial = run_baseline(
        &t,
        &plan,
        &peo,
        VectorConfig {
            vector_tuples: 2048,
            max_vectors: None,
        },
        &mut serial_cpu,
    )
    .unwrap();

    for workers in [1usize, 2, 4, 8] {
        for morsel_tuples in [1_000usize, 4_096] {
            // Baseline (no reopt) and progressive must both be exact.
            for progressive in [false, true] {
                let mut pool = CpuPool::new(CpuConfig::ivy_bridge(), workers);
                let config = ProgressiveConfig {
                    reop_interval: 2,
                    ..Default::default()
                };
                let report = run_parallel_scan(
                    &t,
                    &plan,
                    &peo,
                    MorselConfig::new(morsel_tuples),
                    &mut pool,
                    progressive.then_some(&config),
                )
                .unwrap();
                assert_eq!(
                    report.qualified, serial.qualified,
                    "workers={workers} morsel={morsel_tuples} progressive={progressive}"
                );
                assert_eq!(report.sum, serial.sum);
                assert_eq!(report.workers, workers);
            }
        }
    }
}

#[test]
fn parallel_progressive_scan_converges_like_serial() {
    let n = 1 << 16;
    let (t, plan) = scan_table(n);
    let mut pool = CpuPool::new(CpuConfig::ivy_bridge(), 4);
    let report = run_parallel_scan(
        &t,
        &plan,
        &[2, 1, 0], // descending selectivity: worst order
        MorselConfig::new(2_048),
        &mut pool,
        Some(&ProgressiveConfig {
            reop_interval: 2,
            ..Default::default()
        }),
    )
    .unwrap();
    assert_eq!(
        report.final_order,
        vec![0, 1, 2],
        "switches: {:?}",
        report.switches
    );
    assert!(report.estimates > 0);
    assert!(report.optimizer_cycles > 0);
}

#[test]
fn parallel_pipeline_matches_serial_and_converges_to_same_order() {
    let (fact, dim) = fig14_mem_tables(ROWS, 0xF00D);
    // Single-core ground truth (static, selection-first already applied
    // or not — results are order-invariant).
    let static_pipeline = build_pipeline(&fact, &dim);
    let mut serial_cpu = SimCpu::new(small_cache_cpu());
    let expect = static_pipeline.run_range(&mut serial_cpu, 0, ROWS);

    // Serial progressive from the bad (join-first) order.
    let mut serial_pipeline = build_pipeline(&fact, &dim);
    let mut cpu = SimCpu::new(small_cache_cpu());
    let serial = run_progressive_pipeline(
        &mut serial_pipeline,
        &[1, 0],
        VectorConfig {
            vector_tuples: 4_096,
            max_vectors: None,
        },
        &mut cpu,
        &ProgressiveConfig {
            reop_interval: 2,
            ..Default::default()
        },
    )
    .unwrap();

    // Parallel progressive from the same bad order, 4 workers.
    let mut pipeline = build_pipeline(&fact, &dim);
    let mut pool = CpuPool::new(small_cache_cpu(), 4);
    let report = run_parallel_pipeline(
        &mut pipeline,
        &[1, 0],
        MorselConfig::new(4_096),
        &mut pool,
        Some(&ProgressiveConfig {
            reop_interval: 2,
            ..Default::default()
        }),
    )
    .unwrap();

    assert_eq!(report.qualified, expect.qualified);
    assert_eq!(report.sum, expect.sum);
    assert_eq!(
        report.final_order, serial.final_peo,
        "parallel switches: {:?}",
        report.switches
    );
    // The caller's pipeline is left in the accepted order.
    assert_eq!(pipeline.order(), &report.final_order[..]);
}

#[test]
fn four_workers_speed_up_the_pipeline_at_least_2_5x() {
    let (fact, dim) = fig14_mem_tables(ROWS, 0xF00D);
    let run = |workers: usize| {
        let mut pipeline = build_pipeline(&fact, &dim);
        let mut pool = CpuPool::new(small_cache_cpu(), workers);
        run_parallel_pipeline(
            &mut pipeline,
            &[0, 1],
            MorselConfig::new(4_096),
            &mut pool,
            None,
        )
        .unwrap()
    };
    let one = run(1);
    let four = run(4);
    assert_eq!(one.qualified, four.qualified);
    let speedup = four.speedup_over(one.wall_cycles);
    assert!(
        speedup >= 2.5,
        "4-worker speedup {speedup:.2} < 2.5 (1w {} cycles, 4w wall {} cycles)",
        one.wall_cycles,
        four.wall_cycles
    );
}

#[test]
fn rejected_trials_never_spread_and_always_revert() {
    let (fact, dim) = fig14_mem_tables(1 << 16, 0xF00D);
    let mut pipeline = build_pipeline(&fact, &dim);
    let mut pool = CpuPool::new(small_cache_cpu(), 4);
    // Every trial "regresses" under a negative tolerance: the published
    // order must never change, and each trial must be marked reverted.
    let report = run_parallel_pipeline(
        &mut pipeline,
        &[1, 0],
        MorselConfig::new(4_096),
        &mut pool,
        Some(&ProgressiveConfig {
            reop_interval: 2,
            regression_tolerance: -1.0,
            explore_correlation: false,
            ..Default::default()
        }),
    )
    .unwrap();
    assert_eq!(report.final_order, vec![1, 0]);
    assert!(
        report.switches.iter().all(|s| s.reverted),
        "{:?}",
        report.switches
    );
    assert_eq!(pipeline.order(), &[1, 0]);
}

#[test]
fn zero_reop_interval_and_zero_morsel_are_rejected() {
    let (t, plan) = scan_table(1 << 12);
    let mut pool = CpuPool::new(CpuConfig::tiny_test(), 2);
    let err = run_parallel_scan(&t, &plan, &[0, 1, 2], MorselConfig::new(0), &mut pool, None)
        .unwrap_err();
    assert!(matches!(
        err,
        popt::core::EngineError::InvalidVectorConfig(_)
    ));
    let err = run_parallel_scan(
        &t,
        &plan,
        &[0, 1, 2],
        MorselConfig::new(1_024),
        &mut pool,
        Some(&ProgressiveConfig {
            reop_interval: 0,
            ..Default::default()
        }),
    )
    .unwrap_err();
    assert!(matches!(
        err,
        popt::core::EngineError::InvalidVectorConfig(_)
    ));
}
