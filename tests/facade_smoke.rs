//! Facade smoke test: the `popt` re-exports must compose into a working
//! end-to-end run, enforcing the doctest contract of `crates/core/src/lib.rs`
//! as a regular test (doctests are easy to skip; this is not).

use popt::core::query::{QueryBuilder, RunMode};
use popt::core::QueryBuilder as ReexportedBuilder;
use popt::storage::tpch::{generate_lineitem, TpchConfig};

#[test]
fn facade_reexports_compile_and_agree() {
    let table = generate_lineitem(&TpchConfig::tiny());
    let baseline = QueryBuilder::q6(&table)
        .run(RunMode::Baseline)
        .expect("baseline runs");
    let optimized = QueryBuilder::q6(&table)
        .run(RunMode::Progressive { reop_interval: 2 })
        .expect("progressive runs");
    // Same answer, independent of how the plan was reordered mid-query.
    assert_eq!(baseline.result.sum, optimized.result.sum);
    assert_eq!(
        baseline.result.rows_qualified,
        optimized.result.rows_qualified
    );
    assert!(
        baseline.result.rows_qualified > 0,
        "tiny config must qualify rows"
    );
}

#[test]
fn crate_root_reexport_paths_agree() {
    // `popt::core::QueryBuilder` (crate-root re-export) and
    // `popt::core::query::QueryBuilder` (module path) must be one type.
    let table = generate_lineitem(&TpchConfig::tiny());
    let via_module = QueryBuilder::q6(&table)
        .run(RunMode::Baseline)
        .expect("runs");
    let via_reexport = ReexportedBuilder::q6(&table)
        .run(popt::core::RunMode::Baseline)
        .expect("runs");
    assert_eq!(via_module.result, via_reexport.result);
}
