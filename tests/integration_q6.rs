//! Cross-crate integration: TPC-H Q6 end to end — storage generation,
//! engine execution on the simulated CPU, progressive optimization.

use popt::core::plan::SelectionPlan;
use popt::core::query::{QueryBuilder, RunMode};
use popt::storage::distribution::Layout;
use popt::storage::tpch::{generate_lineitem, TpchConfig};

fn table() -> popt::storage::Table {
    generate_lineitem(&TpchConfig::with_rows(1 << 16))
}

#[test]
fn q6_answer_is_peo_invariant() {
    let t = table();
    let plan = QueryBuilder::q6_plan();
    let orders = [
        plan.identity_peo(),
        vec![4, 3, 2, 1, 0],
        vec![2, 0, 4, 1, 3],
    ];
    let mut results = Vec::new();
    for peo in orders {
        let r = QueryBuilder::q6(&t)
            .initial_peo(peo)
            .run(RunMode::Baseline)
            .expect("baseline runs");
        results.push(r.result);
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[0], results[2]);
}

#[test]
fn progressive_matches_baseline_answer_and_beats_worst_plan() {
    // Vector size must stay proportionate: the optimizer's own cycles are
    // charged honestly, and they only amortize over realistically sized
    // vectors (the paper uses 1M-tuple vectors).
    let t = generate_lineitem(&TpchConfig::with_rows(1 << 18));
    let worst = vec![4, 3, 2, 1, 0];
    let base = QueryBuilder::q6(&t)
        .initial_peo(worst.clone())
        .vector_tuples(16_384)
        .run(RunMode::Baseline)
        .expect("baseline runs");
    let prog = QueryBuilder::q6(&t)
        .initial_peo(worst)
        .vector_tuples(16_384)
        .run(RunMode::Progressive { reop_interval: 3 })
        .expect("progressive runs");
    assert_eq!(base.result, prog.result);
    assert!(
        prog.millis < base.millis,
        "progressive {} ms !< worst baseline {} ms",
        prog.millis,
        base.millis
    );
}

#[test]
fn progressive_is_robust_across_all_5_factorial_starts_sampled() {
    // A coarse version of Figure 11: from any initial order, progressive
    // execution must land within a modest factor of the best baseline.
    // Enough vectors that convergence cost amortizes (the paper runs 600
    // vectors; a handful of pre-convergence vectors must not dominate).
    let t = generate_lineitem(&TpchConfig::with_rows(1 << 19));
    let plan = QueryBuilder::q6_plan();
    let all = plan.all_peos();
    let sample: Vec<_> = all.iter().step_by(17).cloned().collect(); // 8 orders

    let mut best_base = f64::INFINITY;
    let mut baselines = Vec::new();
    for peo in &sample {
        let r = QueryBuilder::q6(&t)
            .initial_peo(peo.clone())
            .vector_tuples(8_192)
            .run(RunMode::Baseline)
            .expect("baseline runs");
        best_base = best_base.min(r.millis);
        baselines.push(r.millis);
    }
    let mut prog_sum = 0.0;
    for peo in &sample {
        let r = QueryBuilder::q6(&t)
            .initial_peo(peo.clone())
            .vector_tuples(8_192)
            .run(RunMode::Progressive { reop_interval: 2 })
            .expect("progressive runs");
        prog_sum += r.millis;
        // The robustness claim under test is *worst-case avoidance*
        // (Section 5.3: "we efficiently alleviate bad initial PEOs and
        // make the overall query execute more robust"): from any start,
        // progressive execution stays within a bounded factor of the
        // best static plan. Individual starts can end somewhat slower
        // than their own baseline — the paper shows the same for fast
        // starts (Section 5.4) and the 5-predicate inversion is
        // under-determined (EXPERIMENTS.md).
        assert!(
            r.millis < best_base * 2.5,
            "initial {peo:?}: progressive {} ms vs best baseline {} ms",
            r.millis,
            best_base
        );
    }
    // In aggregate, progressive execution must beat the static plans.
    let base_avg: f64 = baselines.iter().sum::<f64>() / baselines.len() as f64;
    let prog_avg = prog_sum / sample.len() as f64;
    assert!(
        prog_avg < base_avg,
        "progressive avg {prog_avg} ms !< baseline avg {base_avg} ms"
    );
}

#[test]
fn counters_satisfy_paper_identities_end_to_end() {
    let t = table();
    let r = QueryBuilder::q6(&t).run(RunMode::Baseline).expect("runs");
    let c = &r.counters;
    // Partition: every conditional branch is taken or not taken.
    assert_eq!(c.branches, c.branches_taken + c.branches_not_taken);
    // Qualifying tuples = 2n - bT (Section 2.2), summed over vectors.
    let n = t.rows() as u64;
    assert_eq!(r.result.rows_qualified, 2 * n - c.branches_taken);
    // Mispredictions split by direction.
    assert!(c.mp_taken <= c.branches_taken);
    assert!(c.mp_not_taken <= c.branches_not_taken);
}

#[test]
fn sorted_layout_enables_phase_switches() {
    let t = generate_lineitem(&TpchConfig::with_rows(1 << 16).shipdate_layout(Layout::Sorted));
    let r = QueryBuilder::q6(&t)
        .vector_tuples(2048)
        .run(RunMode::Progressive { reop_interval: 2 })
        .expect("progressive runs");
    // On sorted data the optimal order changes between the date-window
    // phases; at least one non-reverted switch must happen.
    assert!(
        r.switches.iter().any(|s| !s.reverted),
        "no accepted switches on sorted data: {:?}",
        r.switches
    );
}

#[test]
fn empty_result_queries_are_handled() {
    let t = table();
    let plan = SelectionPlan::new(
        vec![popt::core::predicate::Predicate::new(
            "l_quantity",
            popt::core::predicate::CompareOp::Lt,
            0, // nothing qualifies
        )],
        vec!["l_extendedprice".into()],
    )
    .expect("plan");
    let r = QueryBuilder::new(&t, plan)
        .run(RunMode::Progressive { reop_interval: 2 })
        .expect("runs");
    assert_eq!(r.result.rows_qualified, 0);
    assert_eq!(r.result.sum, 0);
}

#[test]
fn different_cpu_presets_agree_on_results() {
    let t = table();
    for cpu in [
        popt::cpu::CpuConfig::nehalem(),
        popt::cpu::CpuConfig::ivy_bridge(),
        popt::cpu::CpuConfig::amd(),
    ] {
        let r = QueryBuilder::q6(&t)
            .cpu(cpu)
            .run(RunMode::Baseline)
            .expect("runs");
        let reference = QueryBuilder::q6(&t).run(RunMode::Baseline).expect("runs");
        assert_eq!(
            r.result, reference.result,
            "results must not depend on the CPU"
        );
    }
}
