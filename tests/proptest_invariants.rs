//! Property-based tests over the core invariants the paper's method
//! relies on, checked across randomized plans, data and selectivities.

use proptest::prelude::*;

use popt::core::exec::pipeline::{FilterOp, Pipeline};
use popt::core::exec::scan::CompiledSelection;
use popt::core::plan::{order_by_selectivity, SelectionPlan};
use popt::core::predicate::{CompareOp, Predicate};
use popt::cost::estimate::{estimate_counters, PlanGeometry};
use popt::cost::markov::ChainSpec;
use popt::cpu::{CpuConfig, SimCpu};
use popt::solver::bounds::bnt_bounds;
use popt::storage::distribution::{knuth_shuffle_window, max_displacement};
use popt::storage::{AddressSpace, ColumnData, Table};

fn table_with_columns(rows: usize, literals: &[i64], seed: u64) -> (Table, SelectionPlan) {
    let mut space = AddressSpace::new();
    let mut t = Table::new("t");
    let mut state = seed | 1;
    for c in 0..literals.len() {
        let data: Vec<i32> = (0..rows)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 17) % 1000) as i32
            })
            .collect();
        t.add_column(format!("c{c}"), ColumnData::I32(data), &mut space);
    }
    let plan = SelectionPlan::new(
        literals
            .iter()
            .enumerate()
            .map(|(c, &lit)| Predicate::new(format!("c{c}"), CompareOp::Lt, lit))
            .collect(),
        vec![],
    )
    .expect("non-empty plan");
    (t, plan)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// `qualifying = 2·n − bT` and `bT + bNT = branches` hold for every
    /// plan, PEO, and data set (Section 2.2's counter identities).
    #[test]
    fn counter_identities_hold(
        lit1 in 0i64..1000,
        lit2 in 0i64..1000,
        lit3 in 0i64..1000,
        seed in any::<u64>(),
        swap in any::<bool>(),
    ) {
        let rows = 2048usize;
        let (t, plan) = table_with_columns(rows, &[lit1, lit2, lit3], seed);
        let peo = if swap { vec![2, 0, 1] } else { vec![0, 1, 2] };
        let compiled = CompiledSelection::compile(&t, &plan, &peo).unwrap();
        let mut cpu = SimCpu::new(CpuConfig::tiny_test());
        let stats = compiled.run_range(&mut cpu, 0, rows);
        let c = &stats.counters;
        prop_assert_eq!(c.branches, c.branches_taken + c.branches_not_taken);
        prop_assert_eq!(stats.derived_output(), stats.qualified);
        prop_assert!(c.mispredictions() <= c.branches);
    }

    /// Query results are invariant under any predicate evaluation order.
    #[test]
    fn results_are_peo_invariant(
        lit1 in 100i64..900,
        lit2 in 100i64..900,
        seed in any::<u64>(),
    ) {
        let rows = 2048usize;
        let (t, plan) = table_with_columns(rows, &[lit1, lit2], seed);
        let mut results = Vec::new();
        for peo in [[0usize, 1], [1, 0]] {
            let compiled = CompiledSelection::compile(&t, &plan, &peo).unwrap();
            let mut cpu = SimCpu::new(CpuConfig::tiny_test());
            let stats = compiled.run_range(&mut cpu, 0, rows);
            results.push((stats.qualified, stats.counters.branches_not_taken));
        }
        prop_assert_eq!(results[0].0, results[1].0);
    }

    /// The BNT bounds of Section 4.1 always bracket the true survivor
    /// vector measured on real executions.
    #[test]
    fn bnt_bounds_bracket_truth(
        lit1 in 50i64..950,
        lit2 in 50i64..950,
        lit3 in 50i64..950,
        seed in any::<u64>(),
    ) {
        let rows = 2048usize;
        let (t, plan) = table_with_columns(rows, &[lit1, lit2, lit3], seed);
        let peo = plan.identity_peo();
        let compiled = CompiledSelection::compile(&t, &plan, &peo).unwrap();
        let mut cpu = SimCpu::new(CpuConfig::tiny_test());
        let stats = compiled.run_range(&mut cpu, 0, rows);
        let sampled = stats.sampled_counters();
        let bounds = bnt_bounds(3, sampled.n_input, sampled.n_output, sampled.bnt);

        // True survivors via exact host-side evaluation.
        let cols: Vec<&[i32]> = (0..3)
            .map(|c| t.column(&format!("c{c}")).unwrap().data().as_i32().unwrap())
            .collect();
        let mut survivors = vec![0.0f64; 3];
        for i in 0..rows {
            let mut alive = true;
            for (j, col) in cols.iter().enumerate() {
                alive = alive && plan.predicates[j].eval(i64::from(col[i]));
                if alive {
                    survivors[j] += 1.0;
                } else {
                    break;
                }
            }
        }
        prop_assert!(bounds.contains(&survivors), "bounds {bounds:?} vs {survivors:?}");
    }

    /// The Markov stationary distribution is a proper distribution and a
    /// fixed point of the chain, for every state count and selectivity.
    #[test]
    fn markov_stationary_is_fixed_point(
        states in 2u8..10,
        split in 1u8..9,
        p in 0.01f64..0.99,
    ) {
        let not_taken = split.min(states - 1).max(1);
        let spec = ChainSpec { states, not_taken_states: not_taken };
        let pi = spec.stationary(p);
        prop_assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let via_solve = spec.stationary_linear(p);
        for (a, b) in pi.iter().zip(&via_solve) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    /// Counter model sanity across the survivor space: predicted counters
    /// are finite, non-negative, and BNT equals the survivor sum.
    #[test]
    fn counter_model_is_sane(
        a1 in 0.0f64..1.0,
        a2 in 0.0f64..1.0,
        a3 in 0.0f64..1.0,
    ) {
        let n = 100_000u64;
        // Sort descending to form a monotone survivor vector.
        let mut fr = [a1, a2, a3];
        fr.sort_by(|x, y| y.partial_cmp(x).unwrap());
        let survivors: Vec<f64> = fr.iter().map(|f| f * n as f64).collect();
        let geom = PlanGeometry::uniform_i32(n, 3);
        let est = estimate_counters(&geom, &survivors);
        prop_assert!(est.bnt >= 0.0 && est.bnt.is_finite());
        prop_assert!((est.bnt - survivors.iter().sum::<f64>()).abs() < 1e-6);
        prop_assert!(est.mp_taken >= 0.0 && est.mp_not_taken >= 0.0);
        prop_assert!(est.l3_accesses >= 0.0 && est.l3_accesses.is_finite());
    }

    /// Windowed Knuth shuffling is a permutation with bounded
    /// displacement.
    #[test]
    fn window_shuffle_is_bounded_permutation(
        window in 1usize..256,
        seed in any::<u64>(),
    ) {
        let mut v: Vec<i32> = (0..2048).collect();
        knuth_shuffle_window(&mut v, window, seed);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..2048).collect::<Vec<i32>>());
        prop_assert!(max_displacement(&v) < window.max(1));
    }

    /// For random N-stage pipelines mixing selections and foreign-key
    /// join filters, any permutation of the stages yields the same
    /// qualifying count and aggregate sum, and non-permutations are
    /// rejected.
    #[test]
    fn pipeline_reorder_preserves_results(
        stages in 2usize..5,
        lit in 100i64..900,
        seed in any::<u64>(),
    ) {
        let rows = 2048usize;
        let dim_n = rows / 4;
        let mut space = AddressSpace::new();
        let mut fact = Table::new("fact");
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for c in 0..4 {
            let data: Vec<i32> = (0..rows).map(|_| ((next() >> 17) % 1000) as i32).collect();
            fact.add_column(format!("val{c}"), ColumnData::I32(data), &mut space);
        }
        fact.add_column(
            "fk_seq",
            ColumnData::I32((0..rows).map(|i| (i / 4) as i32).collect()),
            &mut space,
        );
        fact.add_column(
            "fk_rand",
            ColumnData::I32((0..rows).map(|_| (next() % dim_n as u64) as i32).collect()),
            &mut space,
        );
        let mut dim_space = AddressSpace::new();
        let mut dim = Table::new("dim");
        dim.add_column(
            "payload",
            ColumnData::I32((0..dim_n).map(|_| (next() % 1000) as i32).collect()),
            &mut dim_space,
        );

        // A random permutation of 0..stages (Fisher–Yates off the seed).
        let mut perm: Vec<usize> = (0..stages).collect();
        for i in (1..stages).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            perm.swap(i, j);
        }

        let build = |seed: u64| -> Pipeline<'_> {
            let mut p = Vec::new();
            for k in 0..stages {
                // Bit k of the seed picks the stage kind; joins alternate
                // between the co-clustered and the random foreign key.
                let op = if (seed >> k) & 1 == 1 {
                    let fk = if k % 2 == 0 { "fk_seq" } else { "fk_rand" };
                    FilterOp::join_filter(
                        &fact, fk, &dim, "payload", CompareOp::Lt, lit, k as u32, 100 + k,
                    )
                    .expect("join compiles")
                } else {
                    FilterOp::select(&fact, &format!("val{k}"), CompareOp::Lt, lit, k as u32, 0)
                        .expect("select compiles")
                };
                p.push(op);
            }
            Pipeline::new(p, fact.rows())
                .expect("pipeline")
                .with_aggregate(&fact, "val0")
                .expect("aggregate")
        };

        let identity = build(seed);
        let mut cpu1 = SimCpu::new(CpuConfig::tiny_test());
        let base = identity.run_range(&mut cpu1, 0, rows);

        let mut permuted = build(seed);
        permuted.reorder(&perm).expect("valid permutation");
        let mut cpu2 = SimCpu::new(CpuConfig::tiny_test());
        let got = permuted.run_range(&mut cpu2, 0, rows);

        prop_assert_eq!(got.qualified, base.qualified);
        prop_assert_eq!(got.sum, base.sum);

        // Non-permutations are rejected without touching the pipeline.
        let mut broken = build(seed);
        prop_assert!(broken.reorder(&vec![0; stages]).is_err());
        prop_assert!(broken.reorder(&perm[..stages - 1]).is_err());
        prop_assert!(broken.reorder(&(1..=stages).collect::<Vec<_>>()).is_err());
        prop_assert_eq!(broken.order(), &(0..stages).collect::<Vec<_>>()[..]);
    }

    /// Reordering by selectivity yields a valid permutation and puts the
    /// minimum-selectivity predicate first.
    #[test]
    fn selectivity_order_is_valid_permutation(
        s1 in 0.0f64..1.0,
        s2 in 0.0f64..1.0,
        s3 in 0.0f64..1.0,
        s4 in 0.0f64..1.0,
    ) {
        let peo = vec![3usize, 1, 0, 2];
        let sels = vec![s1, s2, s3, s4];
        let ordered = order_by_selectivity(&peo, &sels);
        let mut check = ordered.clone();
        check.sort_unstable();
        prop_assert_eq!(check, vec![0, 1, 2, 3]);
        // The first entry corresponds to the minimum selectivity.
        let min_idx = sels
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        prop_assert_eq!(ordered[0], peo[min_idx]);
    }
}
