//! Property: serving a random mix of queries — scan/pipeline kinds,
//! random priorities, arrival times, worker counts and morsel sizes,
//! with and without progressive reoptimization — yields per-query
//! results bit-identical to running each query alone on a single core.
//!
//! Case count is the vendored proptest default (256), pinnable via the
//! upstream-compatible `PROPTEST_CASES` environment variable.

use proptest::prelude::*;

use popt::core::exec::pipeline::{FilterOp, Pipeline};
use popt::core::exec::scan::CompiledSelection;
use popt::core::plan::SelectionPlan;
use popt::core::predicate::{CompareOp, Predicate};
use popt::core::progressive::ProgressiveConfig;
use popt::core::serve::{Priority, QueryServer, QuerySpec, ServeConfig};
use popt::core::MorselConfig;
use popt::cpu::{CpuConfig, CpuPool, SimCpu};
use popt::storage::{AddressSpace, ColumnData, Table};
use popt_bench::figures::workload::xorshift64;

const ROWS: usize = 2_048;

/// Fact with two value columns and a random FK into a payload dimension.
fn tables(seed: u64) -> (Table, Table) {
    let dim_n = ROWS / 4;
    let mut state = seed | 1;
    let mut space = AddressSpace::new();
    let mut fact = Table::new("fact");
    for c in 0..2 {
        let data: Vec<i32> = (0..ROWS)
            .map(|_| (xorshift64(&mut state) % 1000) as i32)
            .collect();
        fact.add_column(format!("val{c}"), ColumnData::I32(data), &mut space);
    }
    fact.add_column(
        "fk",
        ColumnData::I32(
            (0..ROWS)
                .map(|_| (xorshift64(&mut state) % dim_n as u64) as i32)
                .collect(),
        ),
        &mut space,
    );
    let mut dim_space = AddressSpace::new();
    let mut dim = Table::new("dim");
    dim.add_column(
        "payload",
        ColumnData::I32(
            (0..dim_n)
                .map(|_| (xorshift64(&mut state) % 1000) as i32)
                .collect(),
        ),
        &mut dim_space,
    );
    (fact, dim)
}

fn scan_plan(lit: i64) -> SelectionPlan {
    SelectionPlan::new(
        vec![
            Predicate::new("val0", CompareOp::Lt, lit),
            Predicate::new("val1", CompareOp::Lt, 1000 - lit / 2),
        ],
        vec!["val0".into()],
    )
    .expect("plan")
}

fn build_pipeline<'t>(fact: &'t Table, dim: &'t Table, lit: i64) -> Pipeline<'t> {
    let sel = FilterOp::select(fact, "val0", CompareOp::Lt, lit, 0, 0).expect("select");
    let join = FilterOp::join_filter(fact, "fk", dim, "payload", CompareOp::Lt, lit, 1, 100)
        .expect("join");
    Pipeline::new(vec![sel, join], fact.rows())
        .expect("pipeline")
        .with_aggregate(fact, "val1")
        .expect("aggregate")
}

proptest! {
    /// Every admitted query's (qualified, sum) equals its solo
    /// single-core execution, regardless of the mix around it.
    #[test]
    fn served_queries_are_exact(
        seed in any::<u64>(),
        nqueries in 1usize..5,
        kinds in any::<u64>(),
        priority_bits in any::<u64>(),
        arrival_spread in 0u64..80_000,
        workers in 1usize..5,
        morsel_tuples in 96usize..1024,
        reopt in any::<bool>(),
        use_cache in any::<bool>(),
    ) {
        let (fact, dim) = tables(seed);
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let priorities = [Priority::Low, Priority::Normal, Priority::High];

        // Solo references and specs, one per query.
        let mut refs = Vec::new();
        let mut server = QueryServer::new(ServeConfig {
            morsels: MorselConfig::new(morsel_tuples),
            reopt: reopt.then(|| ProgressiveConfig {
                reop_interval: 2,
                ..Default::default()
            }),
            use_order_cache: use_cache,
            dynamic_repartition: false,
        });
        for k in 0..nqueries {
            let lit = 100 + (xorshift64(&mut state) % 800) as i64;
            let arrival = if arrival_spread == 0 {
                0
            } else {
                xorshift64(&mut state) % arrival_spread
            };
            let priority = priorities[(priority_bits >> (2 * k)) as usize % 3];
            if (kinds >> k) & 1 == 0 {
                let plan = scan_plan(lit);
                let mut cpu = SimCpu::new(CpuConfig::tiny_test());
                let expect = CompiledSelection::compile(&fact, &plan, &[1, 0])
                    .expect("compiles")
                    .run_range(&mut cpu, 0, ROWS);
                refs.push((expect.qualified, expect.sum));
                server.admit(QuerySpec::scan(
                    format!("q{k}"), &fact, plan, vec![1, 0], priority, arrival,
                ));
            } else {
                let pipeline = build_pipeline(&fact, &dim, lit);
                let mut cpu = SimCpu::new(CpuConfig::tiny_test());
                let expect = pipeline.run_range(&mut cpu, 0, ROWS);
                refs.push((expect.qualified, expect.sum));
                server.admit(QuerySpec::pipeline(
                    format!("q{k}"),
                    build_pipeline(&fact, &dim, lit),
                    vec![1, 0],
                    priority,
                    arrival,
                ));
            }
        }

        let mut pool = CpuPool::new(CpuConfig::tiny_test(), workers);
        let report = server.run(&mut pool).expect("serve run succeeds");
        prop_assert_eq!(report.queries.len(), nqueries);
        for (q, &(qualified, sum)) in report.queries.iter().zip(&refs) {
            prop_assert_eq!(
                q.qualified, qualified,
                "{} diverged (workers={}, morsel={}, reopt={}, cache={})",
                &q.label, workers, morsel_tuples, reopt, use_cache
            );
            prop_assert_eq!(q.sum, sum, "{} sum diverged", &q.label);
            prop_assert!(q.latency_cycles >= q.queue_cycles);
            prop_assert!(q.morsels > 0);
        }
        prop_assert!(report.occupancy > 0.0 && report.occupancy <= 1.0 + 1e-12);
    }
}
