//! Cross-crate integration: the full non-invasive inference loop.
//!
//! Unlike the solver's unit tests (which invert the model on synthetic
//! counters), these tests sample *simulated-hardware* counters from real
//! engine executions and require the estimator to recover the planted
//! selectivities — model error, predictor warmup and cache noise
//! included.

use popt::core::exec::scan::CompiledSelection;
use popt::core::plan::SelectionPlan;
use popt::core::predicate::{CompareOp, Predicate};
use popt::cost::markov::ChainSpec;
use popt::cpu::{CpuConfig, SimCpu};
use popt::solver::{estimate_selectivities, EstimatorConfig};
use popt::storage::{AddressSpace, ColumnData, Table};

fn pseudo(i: usize, salt: u64) -> i32 {
    // splitmix64 finalizer: proper avalanche so different salts yield
    // statistically independent columns (a correlated generator would
    // make conditional selectivities diverge from the planted marginals —
    // exactly the Section 4.5 hazard these tests must *not* trip over).
    let mut z = (i as u64) ^ (salt << 32);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % 1000) as i32
}

fn uniform_table(rows: usize, cols: usize) -> Table {
    let mut space = AddressSpace::new();
    let mut t = Table::new("t");
    for c in 0..cols {
        t.add_column(
            format!("c{c}"),
            ColumnData::I32((0..rows).map(|i| pseudo(i, c as u64 + 1)).collect()),
            &mut space,
        );
    }
    t
}

fn plan_for(selectivities: &[f64]) -> SelectionPlan {
    SelectionPlan::new(
        selectivities
            .iter()
            .enumerate()
            .map(|(i, &s)| Predicate::new(format!("c{i}"), CompareOp::Lt, (s * 1000.0) as i64))
            .collect(),
        vec![],
    )
    .expect("plan")
}

fn recover(selectivities: &[f64], rows: usize) -> Vec<f64> {
    let table = uniform_table(rows, selectivities.len());
    let plan = plan_for(selectivities);
    let peo = plan.identity_peo();
    let compiled = CompiledSelection::compile(&table, &plan, &peo).expect("compiles");
    let mut cpu = SimCpu::new(CpuConfig::ivy_bridge());
    let stats = compiled.run_range(&mut cpu, 0, rows);
    let sampled = stats.sampled_counters();
    let geom = compiled.plan_geometry(sampled.n_input, ChainSpec::SIX, 64);
    estimate_selectivities(&geom, &sampled, &EstimatorConfig::default()).selectivities
}

#[test]
fn two_predicates_recovered_from_hardware_counters() {
    let got = recover(&[0.4, 0.2], 1 << 16);
    assert!((got[0] - 0.4).abs() < 0.08, "{got:?}");
    assert!((got[1] - 0.2).abs() < 0.08, "{got:?}");
}

#[test]
fn asymmetric_orders_are_distinguished() {
    // The Section 4.2 example: (40%, 20%) vs (20%, 40%).
    let a = recover(&[0.4, 0.2], 1 << 16);
    let b = recover(&[0.2, 0.4], 1 << 16);
    assert!(a[0] > b[0] + 0.1, "a={a:?} b={b:?}");
    assert!(b[1] > a[1] + 0.1, "a={a:?} b={b:?}");
}

#[test]
fn three_predicates_recovered_within_tolerance() {
    let want = [0.7, 0.3, 0.5];
    let got = recover(&want, 1 << 16);
    for (g, w) in got.iter().zip(want) {
        assert!((g - w).abs() < 0.15, "got {got:?}, want {want:?}");
    }
}

#[test]
fn five_predicates_rank_usably() {
    // With five predicates the system is under-determined; the paper only
    // needs the estimates to *order* the predicates usefully. Require the
    // most selective planted predicate to be ranked in the best two.
    let want = [0.9, 0.05, 0.6, 0.4, 0.75];
    let got = recover(&want, 1 << 16);
    let mut rank: Vec<usize> = (0..got.len()).collect();
    rank.sort_by(|&a, &b| got[a].partial_cmp(&got[b]).unwrap());
    assert!(
        rank[0] == 1 || rank[1] == 1,
        "most selective predicate not ranked early: estimates {got:?}"
    );
}

#[test]
fn estimates_stay_within_bounds_on_real_counters() {
    let table = uniform_table(1 << 15, 3);
    let plan = plan_for(&[0.5, 0.25, 0.8]);
    let peo = plan.identity_peo();
    let compiled = CompiledSelection::compile(&table, &plan, &peo).expect("compiles");
    let mut cpu = SimCpu::new(CpuConfig::ivy_bridge());
    let stats = compiled.run_range(&mut cpu, 0, 1 << 15);
    let sampled = stats.sampled_counters();
    let geom = compiled.plan_geometry(sampled.n_input, ChainSpec::SIX, 64);
    let result = estimate_selectivities(&geom, &sampled, &EstimatorConfig::default());
    assert!(result.bounds.contains(&result.survivors), "{result:?}");
    // Survivor sum must reproduce the sampled BNT closely (it is an
    // exact identity of the workload).
    let sum: f64 = result.survivors.iter().sum();
    let bnt = sampled.bnt as f64;
    assert!((sum - bnt).abs() / bnt < 0.05, "sum {sum} vs bnt {bnt}");
}

#[test]
fn derived_output_identity_holds_on_hardware_counters() {
    let table = uniform_table(1 << 15, 4);
    let plan = plan_for(&[0.6, 0.5, 0.4, 0.3]);
    let compiled =
        CompiledSelection::compile(&table, &plan, &plan.identity_peo()).expect("compiles");
    let mut cpu = SimCpu::new(CpuConfig::ivy_bridge());
    let stats = compiled.run_range(&mut cpu, 0, 1 << 15);
    assert_eq!(stats.derived_output(), stats.qualified);
}
