//! Cross-crate integration: join-filter pipelines, sortedness detection
//! and counter-driven join reordering (Sections 5.5–5.6).

use popt::core::exec::pipeline::{FilterOp, Pipeline};
use popt::core::predicate::CompareOp;
use popt::core::sortedness::{classify, recommend_join_order, AccessPattern, JoinObservation};
use popt::cost::join_model::JoinGeometry;
use popt::cpu::SimCpu;
use popt::storage::tpch::{generate_lineitem, generate_orders, generate_part, TpchConfig};

mod common;
use common::small_cache_cpu;

fn setup() -> (
    popt::storage::Table,
    popt::storage::Table,
    popt::storage::Table,
) {
    let cfg = TpchConfig::with_rows(1 << 16);
    (
        generate_lineitem(&cfg),
        generate_orders(&cfg),
        generate_part(&cfg),
    )
}

#[test]
fn orders_join_is_coclustered_part_join_is_not() {
    let (lineitem, orders, part) = setup();
    let cpu_cfg = small_cache_cpu();
    let probe = |fk: &str, dim: &popt::storage::Table, col: &str| {
        let join =
            FilterOp::join_filter(&lineitem, fk, dim, col, CompareOp::Lt, i64::MAX / 2, 0, 100)
                .expect("join compiles");
        let pipeline = Pipeline::new(vec![join], lineitem.rows()).expect("pipeline");
        let mut cpu = SimCpu::new(cpu_cfg.clone());
        let stats = pipeline.run_range(&mut cpu, 0, lineitem.rows());
        let geometry = JoinGeometry {
            relation_tuples: dim.rows() as u64,
            tuple_bytes: 4,
            line_bytes: 64,
            cache_lines: cpu_cfg.llc().lines(),
        };
        classify(&geometry, stats.tuples, stats.counters.l3_misses)
    };
    assert_eq!(
        probe("l_orderkey", &orders, "o_totalprice"),
        AccessPattern::CoClustered
    );
    assert_ne!(
        probe("l_partkey", &part, "p_retailprice"),
        AccessPattern::CoClustered
    );
}

#[test]
fn coclustered_join_first_is_faster() {
    let (lineitem, orders, part) = setup();
    let run = |orders_first: bool| {
        let jo = FilterOp::join_filter(
            &lineitem,
            "l_orderkey",
            &orders,
            "o_totalprice",
            CompareOp::Lt,
            250_000,
            0,
            100,
        )
        .expect("orders join");
        let jp = FilterOp::join_filter(
            &lineitem,
            "l_partkey",
            &part,
            "p_retailprice",
            CompareOp::Lt,
            1_500,
            1,
            101,
        )
        .expect("part join");
        let ops = if orders_first {
            vec![jo, jp]
        } else {
            vec![jp, jo]
        };
        let pipeline = Pipeline::new(ops, lineitem.rows()).expect("pipeline");
        let mut cpu = SimCpu::new(small_cache_cpu());
        let stats = pipeline.run_range(&mut cpu, 0, lineitem.rows());
        (cpu.cycles(), stats.qualified)
    };
    let (orders_first, q1) = run(true);
    let (part_first, q2) = run(false);
    assert_eq!(q1, q2, "join order must not change the result");
    assert!(
        orders_first < part_first,
        "orders-first {orders_first} !< part-first {part_first}"
    );
}

#[test]
fn detector_recommends_the_fast_order() {
    let (lineitem, orders, part) = setup();
    let cpu_cfg = small_cache_cpu();
    let observe = |fk: &str, dim: &popt::storage::Table, col: &str, name: &str| {
        let join =
            FilterOp::join_filter(&lineitem, fk, dim, col, CompareOp::Lt, i64::MAX / 2, 0, 100)
                .expect("join compiles");
        let pipeline = Pipeline::new(vec![join], lineitem.rows()).expect("pipeline");
        let mut cpu = SimCpu::new(cpu_cfg.clone());
        let stats = pipeline.run_range(&mut cpu, 0, 1 << 14);
        JoinObservation {
            name: name.into(),
            geometry: JoinGeometry {
                relation_tuples: dim.rows() as u64,
                tuple_bytes: 4,
                line_bytes: 64,
                cache_lines: cpu_cfg.llc().lines(),
            },
            accesses: stats.tuples,
            measured_misses: stats.counters.l3_misses,
        }
    };
    let obs = vec![
        observe("l_partkey", &part, "p_retailprice", "part"),
        observe("l_orderkey", &orders, "o_totalprice", "orders"),
    ];
    let order = recommend_join_order(&obs);
    assert_eq!(obs[order[0]].name, "orders");
}

#[test]
fn mixed_selection_join_pipeline_is_order_invariant() {
    let (lineitem, orders, _) = setup();
    let run = |order: [usize; 2]| {
        let sel =
            FilterOp::select(&lineitem, "l_quantity", CompareOp::Lt, 24, 0, 0).expect("selection");
        let join = FilterOp::join_filter(
            &lineitem,
            "l_orderkey",
            &orders,
            "o_totalprice",
            CompareOp::Lt,
            250_000,
            1,
            100,
        )
        .expect("join");
        let mut pipeline = Pipeline::new(vec![sel, join], lineitem.rows()).expect("pipeline");
        pipeline.reorder(&order).expect("reorder");
        let mut cpu = SimCpu::new(small_cache_cpu());
        pipeline.run_range(&mut cpu, 0, lineitem.rows()).qualified
    };
    assert_eq!(run([0, 1]), run([1, 0]));
}

#[test]
fn expensive_selection_changes_the_best_order() {
    // With a cheap selection, selection-first wins against a random-probe
    // join; make the selection expensive enough and join-first can win
    // when the join is co-clustered (the Figure 14 trade-off).
    let (lineitem, orders, _) = setup();
    let run = |expensive: u64, join_first: bool| {
        let sel = FilterOp::select(&lineitem, "l_quantity", CompareOp::Lt, 45, 0, expensive)
            .expect("selection");
        let join = FilterOp::join_filter(
            &lineitem,
            "l_orderkey",
            &orders,
            "o_totalprice",
            CompareOp::Lt,
            100_000,
            1,
            100,
        )
        .expect("join");
        let ops = if join_first {
            vec![join, sel]
        } else {
            vec![sel, join]
        };
        let pipeline = Pipeline::new(ops, lineitem.rows()).expect("pipeline");
        let mut cpu = SimCpu::new(small_cache_cpu());
        pipeline.run_range(&mut cpu, 0, lineitem.rows());
        cpu.cycles()
    };
    // Expensive selection + co-clustered (cheap) join: join-first wins.
    assert!(
        run(200, true) < run(200, false),
        "join-first should win with an expensive selection"
    );
}
