//! Properties of the query frontend.
//!
//! 1. A [`CompiledProgram`] lowered from a random logical plan is
//!    **bit-identical** to the hand-chained boxed [`Pipeline`] of the
//!    same shape — identical results *and* identical simulated CPU
//!    events — solo, under progressive reoptimization, and
//!    morsel-parallel across worker counts, morsel sizes, and
//!    shared/private LLC modes.
//! 2. The static optimizer passes commute semantically: *any* order of
//!    the four passes compiles to a program with the same answer as the
//!    unoptimized plan (lowering normalizes on its own).
//! 3. Filter pushdown never increases any node's estimated input
//!    cardinality.
//!
//! Case count is the vendored proptest default (256), pinnable via the
//! upstream-compatible `PROPTEST_CASES` environment variable.

use proptest::prelude::*;

use popt::core::exec::pipeline::{FilterOp, Pipeline};
use popt::core::exec::program::CompiledProgram;
use popt::core::parallel::{run_parallel_pipeline, run_parallel_program, MorselConfig};
use popt::core::plan::passes::{
    constant_folding, filter_pushdown, join_condition_extraction, projection_pruning, Pass,
};
use popt::core::plan::{Expr, LogicalPlan, PassRegistry, PlanBuilder};
use popt::core::predicate::CompareOp;
use popt::core::progressive::{
    run_progressive_pipeline, run_progressive_program, ProgressiveConfig, VectorConfig,
};
use popt::cpu::{CpuConfig, CpuPool, LlcMode, SimCpu};
use popt::storage::{AddressSpace, ColumnData, Table};
use popt_bench::figures::workload::xorshift64;

const ROWS: usize = 2_048;

/// Fact with four value columns, a co-clustered and a random FK, plus a
/// payload dimension — the random-workload shape of the parallel
/// proptests.
fn tables(seed: u64) -> (Table, Table) {
    let dim_n = ROWS / 4;
    let mut state = seed | 1;
    let mut space = AddressSpace::new();
    let mut fact = Table::new("fact");
    for c in 0..4 {
        let data: Vec<i32> = (0..ROWS)
            .map(|_| (xorshift64(&mut state) % 1000) as i32)
            .collect();
        fact.add_column(format!("val{c}"), ColumnData::I32(data), &mut space);
    }
    fact.add_column(
        "fk_seq",
        ColumnData::I32((0..ROWS).map(|i| (i / 4) as i32).collect()),
        &mut space,
    );
    fact.add_column(
        "fk_rand",
        ColumnData::I32(
            (0..ROWS)
                .map(|_| (xorshift64(&mut state) % dim_n as u64) as i32)
                .collect(),
        ),
        &mut space,
    );
    let mut dim_space = AddressSpace::new();
    let mut dim = Table::new("dim");
    dim.add_column(
        "payload",
        ColumnData::I32(
            (0..dim_n)
                .map(|_| (xorshift64(&mut state) % 1000) as i32)
                .collect(),
        ),
        &mut dim_space,
    );
    (fact, dim)
}

/// Random mixed plan through the builder: bit `k` of `kinds` picks
/// select vs. join for stage `k`; joins alternate FKs, selections carry
/// per-stage UDF cost.
fn plan<'t>(
    fact: &'t Table,
    dim: &'t Table,
    stages: usize,
    kinds: u64,
    lit: i64,
) -> LogicalPlan<'t> {
    let mut builder = PlanBuilder::scan(fact);
    let mut join_ordinal = 0usize;
    for k in 0..stages {
        if (kinds >> k) & 1 == 1 {
            let fk = if join_ordinal % 2 == 0 {
                "fk_seq"
            } else {
                "fk_rand"
            };
            join_ordinal += 1;
            builder = builder.join(dim, fk, Expr::col("payload").less_than(lit));
        } else {
            builder =
                builder.filter_costed(Expr::col(format!("val{k}")).less_than(lit), k as u64 * 10);
        }
    }
    builder.aggregate("val0").build()
}

/// The same shape, hand-chained through the legacy boxed constructors
/// with the lowering conventions (branch sites by emission order, dim
/// streams `100 + join ordinal`).
fn boxed<'t>(fact: &'t Table, dim: &'t Table, stages: usize, kinds: u64, lit: i64) -> Pipeline<'t> {
    let mut ops = Vec::new();
    let mut join_ordinal = 0usize;
    for k in 0..stages {
        let op = if (kinds >> k) & 1 == 1 {
            let fk = if join_ordinal % 2 == 0 {
                "fk_seq"
            } else {
                "fk_rand"
            };
            let stream = 100 + join_ordinal;
            join_ordinal += 1;
            FilterOp::join_filter(
                fact,
                fk,
                dim,
                "payload",
                CompareOp::Lt,
                lit,
                k as u32,
                stream,
            )
            .expect("join compiles")
        } else {
            FilterOp::select(
                fact,
                &format!("val{k}"),
                CompareOp::Lt,
                lit,
                k as u32,
                k as u64 * 10,
            )
            .expect("select compiles")
        };
        ops.push(op);
    }
    Pipeline::new(ops, fact.rows())
        .expect("pipeline")
        .with_aggregate(fact, "val0")
        .expect("aggregate")
}

fn compile<'t>(plan: &LogicalPlan<'t>) -> CompiledProgram<'t> {
    plan.compile().expect("plan lowers")
}

proptest! {
    /// The compiled program and the boxed pipeline are the same
    /// executor: identical bits and identical simulated cycles — solo,
    /// progressive, and parallel under both LLC modes.
    #[test]
    fn compiled_program_is_bit_identical_to_the_boxed_pipeline(
        stages in 2usize..5,
        kinds in any::<u64>(),
        lit in 100i64..900,
        seed in any::<u64>(),
        workers in 1usize..9,
        morsel_tuples in 128usize..1500,
        vector_tuples in 128usize..1500,
        reop_interval in 2usize..6,
    ) {
        let (fact, dim) = tables(seed);
        let logical = plan(&fact, &dim, stages, kinds, lit);
        let identity: Vec<usize> = (0..stages).collect();

        // Solo: the same CPU events, not just the same answer.
        let program = compile(&logical);
        let pipeline = boxed(&fact, &dim, stages, kinds, lit);
        let mut c1 = SimCpu::new(CpuConfig::tiny_test());
        let a = program.run_range(&mut c1, 0, ROWS);
        let mut c2 = SimCpu::new(CpuConfig::tiny_test());
        let b = pipeline.run_range(&mut c2, 0, ROWS);
        prop_assert_eq!(a.qualified, b.qualified);
        prop_assert_eq!(a.sum, b.sum);
        prop_assert_eq!(a.counters, b.counters, "solo CPU events diverged");
        prop_assert_eq!(c1.counters().cycles, c2.counters().cycles);

        // Progressive: the same convergence trajectory and cost.
        let config = ProgressiveConfig { reop_interval, ..Default::default() };
        let vectors = VectorConfig { vector_tuples, max_vectors: None };
        let mut program = compile(&logical);
        let mut cpu = SimCpu::new(CpuConfig::tiny_test());
        let via_program =
            run_progressive_program(&mut program, &identity, vectors, &mut cpu, &config)
                .expect("progressive program runs");
        let mut pipeline = boxed(&fact, &dim, stages, kinds, lit);
        let mut cpu = SimCpu::new(CpuConfig::tiny_test());
        let via_pipeline =
            run_progressive_pipeline(&mut pipeline, &identity, vectors, &mut cpu, &config)
                .expect("progressive pipeline runs");
        prop_assert_eq!(via_program.qualified, via_pipeline.qualified);
        prop_assert_eq!(via_program.sum, via_pipeline.sum);
        prop_assert_eq!(&via_program.final_peo, &via_pipeline.final_peo);
        prop_assert_eq!(via_program.cycles, via_pipeline.cycles, "progressive cost diverged");

        // Parallel: shared and private sockets, reopt on and off. Wall
        // cycles are not compared — morsel→worker assignment follows
        // host thread timing, so only results are deterministic.
        for mode in [LlcMode::Private, LlcMode::Shared] {
            for progressive in [false, true] {
                let mut program = compile(&logical);
                let mut pool = CpuPool::with_mode(CpuConfig::tiny_test(), workers, mode);
                let p = run_parallel_program(
                    &mut program,
                    &identity,
                    MorselConfig::new(morsel_tuples),
                    &mut pool,
                    progressive.then_some(&config),
                ).expect("parallel program runs");
                let mut pipeline = boxed(&fact, &dim, stages, kinds, lit);
                let mut pool = CpuPool::with_mode(CpuConfig::tiny_test(), workers, mode);
                let q = run_parallel_pipeline(
                    &mut pipeline,
                    &identity,
                    MorselConfig::new(morsel_tuples),
                    &mut pool,
                    progressive.then_some(&config),
                ).expect("parallel pipeline runs");
                prop_assert_eq!(
                    p.qualified, q.qualified,
                    "mode={:?} workers={} progressive={}", mode, workers, progressive
                );
                prop_assert_eq!(p.sum, q.sum);
                // The caller's program ends in the published order.
                prop_assert_eq!(program.order(), &p.final_order[..]);
                prop_assert_eq!(pipeline.order(), &q.final_order[..]);
            }
        }
    }

    /// Any order of the four static passes compiles to the same answer
    /// as the unoptimized plan: passes move stages around, lowering
    /// normalizes expressions either way, the result never moves.
    #[test]
    fn any_pass_order_compiles_to_the_same_answer(
        stages in 2usize..5,
        kinds in any::<u64>(),
        lit in 100i64..900,
        extra_lit in 100i64..900,
        seed in any::<u64>(),
        perm in 0usize..24,
    ) {
        let (fact, dim) = tables(seed);
        // The random mixed shape plus material for every pass: a
        // tautology (folding), a join condition smuggling a fact-side
        // conjunct (extraction), filters after joins (pushdown), and a
        // projection of covered columns (pruning).
        let messy = || {
            let mut builder = PlanBuilder::scan(&fact)
                .filter(Expr::lit(1).less_than(2))
                .join(
                    &dim,
                    "fk_rand",
                    Expr::col("payload")
                        .less_than(lit)
                        .and(Expr::col("val0").less_than(extra_lit)),
                );
            let mut join_ordinal = 1usize;
            for k in 1..stages {
                if (kinds >> k) & 1 == 1 {
                    let fk = if join_ordinal % 2 == 0 { "fk_seq" } else { "fk_rand" };
                    join_ordinal += 1;
                    builder = builder.join(&dim, fk, Expr::col("payload").less_than(lit));
                } else {
                    builder = builder
                        .filter_costed(Expr::col(format!("val{k}")).less_than(lit), k as u64 * 10);
                }
            }
            builder.project("val0").project("val1").aggregate("val0").build()
        };

        let reference = compile(&messy());
        let mut cpu = SimCpu::new(CpuConfig::tiny_test());
        let expect = reference.run_range(&mut cpu, 0, ROWS);

        // Lehmer-decode `perm` into one of the 4! pass orders.
        let mut available: Vec<(&'static str, Pass)> = vec![
            ("constant-folding", constant_folding as Pass),
            ("join-condition-extraction", join_condition_extraction as Pass),
            ("filter-pushdown", filter_pushdown as Pass),
            ("projection-pruning", projection_pruning as Pass),
        ];
        let mut registry = PassRegistry::empty();
        let mut code = perm;
        for remaining in (1..=4usize).rev() {
            let pick = code % remaining;
            code /= remaining;
            let (name, pass) = available.remove(pick);
            registry = registry.with(name, pass);
        }

        let optimized = registry.run(messy());
        let program = compile(&optimized);
        prop_assert_eq!(program.len(), reference.len(), "same conjuncts survive");
        let mut cpu = SimCpu::new(CpuConfig::tiny_test());
        let got = program.run_range(&mut cpu, 0, ROWS);
        prop_assert_eq!(got.qualified, expect.qualified, "order {:?}", registry.names());
        prop_assert_eq!(got.sum, expect.sum, "order {:?}", registry.names());
    }

    /// Filter pushdown only ever lowers the estimated input cardinality
    /// at every node position, for any random plan shape.
    #[test]
    fn pushdown_never_raises_input_estimates(
        stages in 2usize..6,
        kinds in any::<u64>(),
        lit in 100i64..900,
        seed in any::<u64>(),
    ) {
        let (fact, dim) = tables(seed);
        let logical = plan(&fact, &dim, stages.min(4), kinds, lit);
        let before = logical.input_estimates();
        let pushed = filter_pushdown(logical);
        let after = pushed.input_estimates();
        prop_assert_eq!(before.len(), after.len());
        for (k, (b, a)) in before.iter().zip(&after).enumerate() {
            prop_assert!(a <= b, "position {}: estimate rose {} -> {}", k, b, a);
        }
    }
}
