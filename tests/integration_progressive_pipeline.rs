//! Cross-crate integration: progressive *operator* reordering for filter
//! pipelines (Sections 5.5–5.6, Figure 14).
//!
//! The acceptance bar: starting from the worse static order on *both*
//! sides of the Figure 14 sortedness crossover, progressive pipeline
//! execution must finish within 10% of the better static order's cycles
//! — the optimizer's trial vectors, estimator time, and late convergence
//! all have to fit inside that envelope.

use popt::core::exec::pipeline::{FilterOp, Pipeline};
use popt::core::predicate::CompareOp;
use popt::core::progressive::{run_progressive_pipeline, ProgressiveConfig, VectorConfig};
use popt::cpu::SimCpu;
use popt::storage::distribution::knuth_shuffle_window;
use popt::storage::{AddressSpace, ColumnData, Table};

mod common;
use common::small_cache_cpu;

// The `ROWS/4`-tuple dimension table (128 KiB) thrashes the shared
// helper's 64 KiB LLC under random probes.
const ROWS: usize = 1 << 17;
const DOMAIN: i64 = 100;

/// The Figure 14 workload: a sorted FK (4 fact tuples per dimension
/// tuple) shuffled within `window`, an expensive 50%-selective predicate
/// column, and a 50%-selective dimension payload.
fn fact_and_dim(window: usize, seed: u64) -> (Table, Table) {
    let dim_n = ROWS / 4;
    let mut fk: Vec<i32> = (0..ROWS).map(|i| (i / 4) as i32).collect();
    if window > 1 {
        knuth_shuffle_window(&mut fk, window, seed);
    }
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 33) as i64
    };
    let val: Vec<i32> = (0..ROWS).map(|_| (next() % DOMAIN) as i32).collect();
    let mut space = AddressSpace::new();
    let mut fact = Table::new("fact");
    fact.add_column("fk", ColumnData::I32(fk), &mut space);
    fact.add_column("val", ColumnData::I32(val), &mut space);
    let payload: Vec<i32> = (0..dim_n).map(|_| (next() % DOMAIN) as i32).collect();
    let mut dim_space = AddressSpace::new();
    let mut dim = Table::new("dim");
    dim.add_column("payload", ColumnData::I32(payload), &mut dim_space);
    (fact, dim)
}

fn build_pipeline<'t>(fact: &'t Table, dim: &'t Table) -> Pipeline<'t> {
    let sel =
        FilterOp::select(fact, "val", CompareOp::Lt, DOMAIN / 2, 0, 50).expect("select compiles");
    let join = FilterOp::join_filter(
        fact,
        "fk",
        dim,
        "payload",
        CompareOp::Lt,
        DOMAIN / 2,
        1,
        100,
    )
    .expect("join compiles");
    Pipeline::new(vec![sel, join], fact.rows()).expect("pipeline")
}

/// Static cycles for one order.
fn static_cycles(fact: &Table, dim: &Table, order: [usize; 2]) -> (u64, u64) {
    let mut pipeline = build_pipeline(fact, dim);
    pipeline.reorder(&order).expect("valid order");
    let mut cpu = SimCpu::new(small_cache_cpu());
    let stats = pipeline.run_range(&mut cpu, 0, fact.rows());
    (stats.counters.cycles, stats.qualified)
}

/// Run progressive from the worse static order and require it within 10%
/// of the better one.
fn assert_progressive_recovers(window: usize) {
    let (fact, dim) = fact_and_dim(window, 0xF1614);
    let (sel_first, q1) = static_cycles(&fact, &dim, [0, 1]);
    let (join_first, q2) = static_cycles(&fact, &dim, [1, 0]);
    assert_eq!(q1, q2);
    let (better, worse_order) = if sel_first <= join_first {
        (sel_first, [1usize, 0])
    } else {
        (join_first, [0usize, 1])
    };

    let mut pipeline = build_pipeline(&fact, &dim);
    let mut cpu = SimCpu::new(small_cache_cpu());
    let prog = run_progressive_pipeline(
        &mut pipeline,
        &worse_order,
        VectorConfig {
            vector_tuples: 4096,
            max_vectors: None,
        },
        &mut cpu,
        &ProgressiveConfig {
            reop_interval: 2,
            ..Default::default()
        },
    )
    .expect("progressive pipeline runs");

    assert_eq!(prog.qualified, q1, "reordering must not change the result");
    let bound = better as f64 * 1.10;
    assert!(
        (prog.cycles as f64) < bound,
        "window {window}: progressive {} !< 1.1 × better static {better} \
         (worse order was {worse_order:?}, switches: {:?})",
        prog.cycles,
        prog.switches
    );
}

/// Sorted side of the crossover: co-clustered probes make join-first the
/// better order; progressive starts selection-first.
#[test]
fn progressive_recovers_on_the_sorted_side() {
    let (fact, dim) = fact_and_dim(1, 0xF1614);
    let (sel_first, _) = static_cycles(&fact, &dim, [0, 1]);
    let (join_first, _) = static_cycles(&fact, &dim, [1, 0]);
    assert!(
        join_first < sel_first,
        "workload sanity: join-first must win on sorted data \
         ({join_first} !< {sel_first})"
    );
    assert_progressive_recovers(1);
}

/// Shuffled side of the crossover: random probes thrash the LLC and the
/// expensive selection belongs in front; progressive starts join-first.
#[test]
fn progressive_recovers_on_the_shuffled_side() {
    let (fact, dim) = fact_and_dim(ROWS, 0xF1614);
    let (sel_first, _) = static_cycles(&fact, &dim, [0, 1]);
    let (join_first, _) = static_cycles(&fact, &dim, [1, 0]);
    assert!(
        sel_first < join_first,
        "workload sanity: selection-first must win on shuffled data \
         ({sel_first} !< {join_first})"
    );
    assert_progressive_recovers(ROWS);
}

/// The aggregate survives mid-run reordering, matching a static run.
#[test]
fn progressive_pipeline_aggregate_is_order_independent() {
    let (fact, dim) = fact_and_dim(1, 0xF1614);
    let static_pipeline = build_pipeline(&fact, &dim)
        .with_aggregate(&fact, "val")
        .expect("aggregate column");
    let mut cpu = SimCpu::new(small_cache_cpu());
    let expect = static_pipeline.run_range(&mut cpu, 0, fact.rows());

    let mut pipeline = build_pipeline(&fact, &dim)
        .with_aggregate(&fact, "val")
        .expect("aggregate column");
    let mut cpu = SimCpu::new(small_cache_cpu());
    let prog = run_progressive_pipeline(
        &mut pipeline,
        &[0, 1],
        VectorConfig {
            vector_tuples: 4096,
            max_vectors: None,
        },
        &mut cpu,
        &ProgressiveConfig {
            reop_interval: 2,
            ..Default::default()
        },
    )
    .expect("progressive pipeline runs");
    assert_eq!(prog.qualified, expect.qualified);
    assert_eq!(prog.sum, expect.sum);
    assert!(prog.sum > 0);
}
