//! Property: the batched executor fast paths are **bit-identical** to
//! the scalar per-event oracle (`run_range_scalar`, reachable via
//! `set_scalar_oracle`) — identical [`VectorStats`] *and* identical full
//! PMU counter state for random workloads and vector boundaries, and an
//! identical full [`ParallelReport`] across socket counts, worker
//! counts, LLC modes, and progressive reoptimization.
//!
//! Case count is the vendored proptest default (256), pinnable via the
//! upstream-compatible `PROPTEST_CASES` environment variable (CI runs
//! this suite as a blocking smoke with `PROPTEST_CASES=64`).

use proptest::prelude::*;

use popt::core::exec::scan::CompiledSelection;
use popt::core::parallel::{run_parallel_program, MorselConfig};
use popt::core::plan::SelectionPlan;
use popt::core::plan::{Expr, LogicalPlan, PlanBuilder};
use popt::core::predicate::{CompareOp, Predicate};
use popt::core::progressive::ProgressiveConfig;
use popt::cpu::{CpuConfig, CpuPool, LlcMode, SimCpu};
use popt::storage::{AddressSpace, ColumnData, Table};
use popt_bench::figures::workload::xorshift64;

const ROWS: usize = 2_048;

/// Fact with four value columns, a co-clustered and a random FK, plus a
/// payload dimension — the random-workload shape of the other parallel
/// proptests.
fn tables(seed: u64) -> (Table, Table) {
    let dim_n = ROWS / 4;
    let mut state = seed | 1;
    let mut space = AddressSpace::new();
    let mut fact = Table::new("fact");
    for c in 0..4 {
        let data: Vec<i32> = (0..ROWS)
            .map(|_| (xorshift64(&mut state) % 1000) as i32)
            .collect();
        fact.add_column(format!("val{c}"), ColumnData::I32(data), &mut space);
    }
    fact.add_column(
        "fk_seq",
        ColumnData::I32((0..ROWS).map(|i| (i / 4) as i32).collect()),
        &mut space,
    );
    fact.add_column(
        "fk_rand",
        ColumnData::I32(
            (0..ROWS)
                .map(|_| (xorshift64(&mut state) % dim_n as u64) as i32)
                .collect(),
        ),
        &mut space,
    );
    let mut dim_space = AddressSpace::new();
    let mut dim = Table::new("dim");
    dim.add_column(
        "payload",
        ColumnData::I32(
            (0..dim_n)
                .map(|_| (xorshift64(&mut state) % 1000) as i32)
                .collect(),
        ),
        &mut dim_space,
    );
    (fact, dim)
}

/// Random mixed select/join plan: bit `k` of `kinds` picks the stage
/// kind; joins alternate the co-clustered and random FK.
fn plan<'t>(
    fact: &'t Table,
    dim: &'t Table,
    stages: usize,
    kinds: u64,
    lit: i64,
) -> LogicalPlan<'t> {
    let mut builder = PlanBuilder::scan(fact);
    let mut join_ordinal = 0usize;
    for k in 0..stages {
        if (kinds >> k) & 1 == 1 {
            let fk = if join_ordinal % 2 == 0 {
                "fk_seq"
            } else {
                "fk_rand"
            };
            join_ordinal += 1;
            builder = builder.join(dim, fk, Expr::col("payload").less_than(lit));
        } else {
            builder =
                builder.filter_costed(Expr::col(format!("val{k}")).less_than(lit), k as u64 * 10);
        }
    }
    builder.aggregate("val0").build()
}

proptest! {
    /// Serial pipeline programs: batched vs scalar oracle over random
    /// vector boundaries — identical stats and identical full counters
    /// after every vector.
    #[test]
    fn program_fast_path_matches_oracle(
        stages in 1usize..5,
        kinds in any::<u64>(),
        lit in 100i64..900,
        seed in any::<u64>(),
        vector in 128usize..1200,
    ) {
        let (fact, dim) = tables(seed);
        let p = plan(&fact, &dim, stages, kinds, lit);
        let mut fast = p.compile().expect("plan lowers");
        let mut oracle = fast.clone();
        oracle.set_scalar_oracle(true);
        let mut cpu_f = SimCpu::new(CpuConfig::tiny_test());
        let mut cpu_o = SimCpu::new(CpuConfig::tiny_test());
        // Also exercise re-chaining: reverse the order mid-run.
        let order: Vec<usize> = (0..stages).rev().collect();
        let mut start = 0usize;
        let mut flipped = false;
        while start < ROWS {
            let end = (start + vector).min(ROWS);
            if !flipped && start >= ROWS / 2 {
                fast.reorder(&order).expect("reorder");
                oracle.reorder(&order).expect("reorder");
                flipped = true;
            }
            let sf = fast.run_range(&mut cpu_f, start, end);
            let so = oracle.run_range(&mut cpu_o, start, end);
            prop_assert_eq!(&sf, &so, "vector {}..{}", start, end);
            prop_assert_eq!(cpu_f.counters(), cpu_o.counters());
            start = end;
        }
    }

    /// Serial multi-selection scans (including the specialized
    /// single-predicate bulk path): batched vs scalar oracle.
    #[test]
    fn scan_fast_path_matches_oracle(
        preds in 1usize..4,
        lit in 0i64..1000,
        seed in any::<u64>(),
        vector in 128usize..1200,
        with_agg in any::<bool>(),
    ) {
        let mut state = seed | 1;
        let mut space = AddressSpace::new();
        let mut t = Table::new("t");
        for c in 0..3 {
            let data: Vec<i32> = (0..ROWS)
                .map(|_| (xorshift64(&mut state) % 1000) as i32)
                .collect();
            t.add_column(format!("c{c}"), ColumnData::I32(data), &mut space);
        }
        let plan = SelectionPlan::new(
            (0..preds)
                .map(|c| Predicate::new(format!("c{c}"), CompareOp::Lt, lit + c as i64 * 37))
                .collect(),
            if with_agg { vec!["c0".into()] } else { vec![] },
        ).expect("plan");
        let peo: Vec<usize> = (0..preds).collect();
        let mut fast = CompiledSelection::compile(&t, &plan, &peo).expect("compiles");
        let mut cpu_f = SimCpu::new(CpuConfig::tiny_test());
        let mut cpu_o = SimCpu::new(CpuConfig::tiny_test());
        let mut start = 0usize;
        while start < ROWS {
            let end = (start + vector).min(ROWS);
            fast.set_scalar_oracle(false);
            let sf = fast.run_range(&mut cpu_f, start, end);
            fast.set_scalar_oracle(true);
            let so = fast.run_range(&mut cpu_o, start, end);
            prop_assert_eq!(&sf, &so, "vector {}..{} preds {}", start, end, preds);
            prop_assert_eq!(cpu_f.counters(), cpu_o.counters());
            start = end;
        }
    }

    /// Morsel-parallel execution: with reoptimization off the batched
    /// fast path and the scalar oracle produce the **same full report**
    /// — per-worker cycles, wall cycles, counters, final orders —
    /// across socket counts, worker counts, and LLC modes. With
    /// progressive reoptimization on, trial leasing is resolved by
    /// host thread arrival order, so two *runs* (of either path) may
    /// legitimately take different switch sequences; there the oracle
    /// comparison pins the ground truth (qualified, sum, morsels), the
    /// same contract the other parallel proptests use.
    #[test]
    fn parallel_report_matches_oracle(
        stages in 1usize..4,
        kinds in any::<u64>(),
        lit in 100i64..900,
        seed in any::<u64>(),
        workers in 1usize..7,
        sockets in 1usize..3,
        morsel_tuples in 128usize..1500,
    ) {
        let (fact, dim) = tables(seed);
        let order: Vec<usize> = (0..stages).collect();
        let sockets = sockets.min(workers); // topology requires sockets <= cores
        for mode in [LlcMode::Private, LlcMode::Shared] {
            for progressive in [false, true] {
                let config = ProgressiveConfig { reop_interval: 2, ..Default::default() };
                let run = |oracle: bool| {
                    let p = plan(&fact, &dim, stages, kinds, lit);
                    let mut program = p.compile().expect("plan lowers");
                    program.set_scalar_oracle(oracle);
                    let mut pool =
                        CpuPool::with_topology(CpuConfig::tiny_test(), workers, mode, sockets);
                    run_parallel_program(
                        &mut program,
                        &order,
                        MorselConfig::new(morsel_tuples),
                        &mut pool,
                        progressive.then_some(&config),
                    )
                    .expect("parallel run succeeds")
                };
                let fast = run(false);
                let oracle = run(true);
                if progressive {
                    prop_assert_eq!(fast.qualified, oracle.qualified);
                    prop_assert_eq!(fast.sum, oracle.sum);
                    prop_assert_eq!(fast.morsels, oracle.morsels);
                } else {
                    prop_assert_eq!(
                        &fast, &oracle,
                        "mode={:?} sockets={} workers={} morsel={}",
                        mode, sockets, workers, morsel_tuples
                    );
                }
            }
        }
    }
}
