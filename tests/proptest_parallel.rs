//! Property: morsel-driven parallel execution is observationally
//! equivalent to the single-core executor — identical `qualified` and
//! `sum` for random workloads, worker counts, and morsel sizes, with
//! and without progressive reoptimization.
//!
//! Case count is the vendored proptest default (256), pinnable via the
//! upstream-compatible `PROPTEST_CASES` environment variable (CI pins it
//! so the suite's runtime stays bounded).

use proptest::prelude::*;

use popt::core::exec::pipeline::{FilterOp, Pipeline};
use popt::core::parallel::{run_parallel_pipeline, run_parallel_scan, MorselConfig};
use popt::core::plan::SelectionPlan;
use popt::core::predicate::{CompareOp, Predicate};
use popt::core::progressive::ProgressiveConfig;
use popt::cpu::{CpuConfig, CpuPool, SimCpu};
use popt::storage::{AddressSpace, ColumnData, Table};
use popt_bench::figures::workload::xorshift64;

const ROWS: usize = 2_048;

/// Fact with four value columns, a co-clustered and a random FK, plus a
/// payload dimension — the same random-workload shape as the serial
/// reorder proptest.
fn tables(seed: u64) -> (Table, Table) {
    let dim_n = ROWS / 4;
    let mut state = seed | 1;
    let mut space = AddressSpace::new();
    let mut fact = Table::new("fact");
    for c in 0..4 {
        let data: Vec<i32> = (0..ROWS)
            .map(|_| (xorshift64(&mut state) % 1000) as i32)
            .collect();
        fact.add_column(format!("val{c}"), ColumnData::I32(data), &mut space);
    }
    fact.add_column(
        "fk_seq",
        ColumnData::I32((0..ROWS).map(|i| (i / 4) as i32).collect()),
        &mut space,
    );
    fact.add_column(
        "fk_rand",
        ColumnData::I32(
            (0..ROWS)
                .map(|_| (xorshift64(&mut state) % dim_n as u64) as i32)
                .collect(),
        ),
        &mut space,
    );
    let mut dim_space = AddressSpace::new();
    let mut dim = Table::new("dim");
    dim.add_column(
        "payload",
        ColumnData::I32(
            (0..dim_n)
                .map(|_| (xorshift64(&mut state) % 1000) as i32)
                .collect(),
        ),
        &mut dim_space,
    );
    (fact, dim)
}

/// Random mixed pipeline: bit `k` of `kinds` picks select vs. join for
/// stage `k`; joins alternate between the co-clustered and random FK.
fn build<'t>(fact: &'t Table, dim: &'t Table, stages: usize, kinds: u64, lit: i64) -> Pipeline<'t> {
    let mut ops = Vec::new();
    for k in 0..stages {
        let op = if (kinds >> k) & 1 == 1 {
            let fk = if k % 2 == 0 { "fk_seq" } else { "fk_rand" };
            FilterOp::join_filter(
                fact,
                fk,
                dim,
                "payload",
                CompareOp::Lt,
                lit,
                k as u32,
                100 + k,
            )
            .expect("join compiles")
        } else {
            FilterOp::select(fact, &format!("val{k}"), CompareOp::Lt, lit, k as u32, 0)
                .expect("select compiles")
        };
        ops.push(op);
    }
    Pipeline::new(ops, fact.rows())
        .expect("pipeline")
        .with_aggregate(fact, "val0")
        .expect("aggregate")
}

proptest! {
    /// Parallel pipeline execution: identical results for every worker
    /// count and morsel size, baseline and progressive.
    #[test]
    fn parallel_pipeline_is_exact(
        stages in 2usize..5,
        kinds in any::<u64>(),
        lit in 100i64..900,
        seed in any::<u64>(),
        workers in 1usize..9,
        morsel_tuples in 128usize..1500,
    ) {
        let (fact, dim) = tables(seed);
        let serial = build(&fact, &dim, stages, kinds, lit);
        let mut cpu = SimCpu::new(CpuConfig::tiny_test());
        let expect = serial.run_range(&mut cpu, 0, ROWS);

        for progressive in [false, true] {
            let mut pipeline = build(&fact, &dim, stages, kinds, lit);
            let mut pool = CpuPool::new(CpuConfig::tiny_test(), workers);
            let config = ProgressiveConfig { reop_interval: 2, ..Default::default() };
            let report = run_parallel_pipeline(
                &mut pipeline,
                &(0..stages).collect::<Vec<_>>(),
                MorselConfig::new(morsel_tuples),
                &mut pool,
                progressive.then_some(&config),
            ).expect("parallel run succeeds");
            prop_assert_eq!(
                report.qualified, expect.qualified,
                "workers={} morsel={} progressive={}", workers, morsel_tuples, progressive
            );
            prop_assert_eq!(report.sum, expect.sum);
            // The caller's pipeline ends in the published order.
            prop_assert_eq!(pipeline.order(), &report.final_order[..]);
        }
    }

    /// Parallel multi-selection scans: identical to the serial compiled
    /// scan for every worker count, morsel size, and evaluation order.
    #[test]
    fn parallel_scan_is_exact(
        lit1 in 0i64..1000,
        lit2 in 0i64..1000,
        lit3 in 0i64..1000,
        seed in any::<u64>(),
        workers in 1usize..9,
        morsel_tuples in 128usize..1500,
        swap in any::<bool>(),
    ) {
        let mut state = seed | 1;
        let mut space = AddressSpace::new();
        let mut t = Table::new("t");
        for (c, _) in [lit1, lit2, lit3].iter().enumerate() {
            let data: Vec<i32> = (0..ROWS)
                .map(|_| (xorshift64(&mut state) % 1000) as i32)
                .collect();
            t.add_column(format!("c{c}"), ColumnData::I32(data), &mut space);
        }
        let plan = SelectionPlan::new(
            vec![
                Predicate::new("c0", CompareOp::Lt, lit1),
                Predicate::new("c1", CompareOp::Lt, lit2),
                Predicate::new("c2", CompareOp::Lt, lit3),
            ],
            vec!["c0".into()],
        ).expect("plan");
        let peo: Vec<usize> = if swap { vec![2, 0, 1] } else { vec![0, 1, 2] };

        use popt::core::exec::scan::CompiledSelection;
        let compiled = CompiledSelection::compile(&t, &plan, &peo).expect("compiles");
        let mut cpu = SimCpu::new(CpuConfig::tiny_test());
        let expect = compiled.run_range(&mut cpu, 0, ROWS);

        for progressive in [false, true] {
            let mut pool = CpuPool::new(CpuConfig::tiny_test(), workers);
            let config = ProgressiveConfig { reop_interval: 2, ..Default::default() };
            let report = run_parallel_scan(
                &t,
                &plan,
                &peo,
                MorselConfig::new(morsel_tuples),
                &mut pool,
                progressive.then_some(&config),
            ).expect("parallel run succeeds");
            prop_assert_eq!(report.qualified, expect.qualified);
            prop_assert_eq!(report.sum, expect.sum);
        }
    }
}
