//! Property: observation is *non-invasive* — attaching a tracer or the
//! per-stage cycle profiler to a parallel run changes nothing the
//! simulator measures, and what the profiler attributes is conserved
//! bit-exactly.
//!
//! For random mixed pipelines, across sockets × workers × LLC mode ×
//! reopt on/off:
//!
//! * results are always identical between the traced and untraced run
//!   of the same configuration;
//! * whenever the untraced run itself is cycle-deterministic — reopt
//!   off (any worker count), or reopt on with one worker — the whole
//!   [`ParallelReport`] matches bit-for-bit: accepted orders,
//!   per-worker cycles and counters included. (With trials on a
//!   multi-worker pool, *which* rounds run is host-interleaving-elastic
//!   by design — two untraced runs may already publish different
//!   near-optimal orders — so full-report equality is exactly as strong
//!   a claim as repeated untraced runs support, the same contract
//!   `proptest_numa` pins for the NUMA layer.)
//! * the trace itself is complete: one `morsel` claim event per morsel
//!   the report counts, exactly one `complete` event, every stamp's
//!   lane within the tracer's lane count, and the Chrome-trace export
//!   of the captured records parses;
//! * the profiler obeys its conservation law: per worker, stage +
//!   optimizer lanes equal that worker's reported cycles, adding idle
//!   reaches the pool wall clock, and the attributed total equals
//!   `wall × workers` — all bit-exact, on every configuration.
//!
//! Case count is the vendored proptest default (256), pinnable via the
//! upstream-compatible `PROPTEST_CASES` environment variable.

use std::sync::Arc;

use proptest::prelude::*;

use popt::core::exec::pipeline::{FilterOp, Pipeline};
use popt::core::parallel::{
    run_parallel_pipeline, run_parallel_pipeline_observed, run_parallel_pipeline_traced,
    MorselConfig, ParallelReport,
};
use popt::core::predicate::CompareOp;
use popt::core::progressive::ProgressiveConfig;
use popt::core::ExecObservers;
use popt::cpu::{CpuConfig, CpuPool, LlcMode};
use popt::obs::{chrome_trace, validate_json, MemorySink, Profiler, TraceRecord, Tracer};
use popt::storage::{AddressSpace, ColumnData, Table};
use popt_bench::figures::workload::xorshift64;

const ROWS: usize = 2_048;

/// Fact with value columns and a random FK into a dimension sized to
/// exercise the tiny test hierarchy's LLC.
fn tables(seed: u64) -> (Table, Table) {
    let dim_n = ROWS / 2;
    let mut state = seed | 1;
    let mut space = AddressSpace::new();
    let mut fact = Table::new("fact");
    for c in 0..3 {
        let data: Vec<i32> = (0..ROWS)
            .map(|_| (xorshift64(&mut state) % 1000) as i32)
            .collect();
        fact.add_column(format!("val{c}"), ColumnData::I32(data), &mut space);
    }
    fact.add_column(
        "fk",
        ColumnData::I32(
            (0..ROWS)
                .map(|_| (xorshift64(&mut state) % dim_n as u64) as i32)
                .collect(),
        ),
        &mut space,
    );
    let mut dim = Table::new("dim");
    dim.add_column(
        "payload",
        ColumnData::I32(
            (0..dim_n)
                .map(|_| (xorshift64(&mut state) % 1000) as i32)
                .collect(),
        ),
        &mut space,
    );
    (fact, dim)
}

/// Random mixed pipeline: bit `k` of `kinds` picks select vs. join for
/// stage `k`.
fn build<'t>(fact: &'t Table, dim: &'t Table, stages: usize, kinds: u64, lit: i64) -> Pipeline<'t> {
    let mut ops = Vec::new();
    for k in 0..stages {
        let op = if (kinds >> k) & 1 == 1 {
            FilterOp::join_filter(
                fact,
                "fk",
                dim,
                "payload",
                CompareOp::Lt,
                lit,
                k as u32,
                100,
            )
            .expect("join compiles")
        } else {
            FilterOp::select(fact, &format!("val{k}"), CompareOp::Lt, lit, k as u32, 0)
                .expect("select compiles")
        };
        ops.push(op);
    }
    Pipeline::new(ops, fact.rows())
        .expect("pipeline")
        .with_aggregate(fact, "val0")
        .expect("aggregate")
}

struct Run {
    report: ParallelReport,
    records: Vec<TraceRecord>,
    lanes: usize,
}

/// One (sockets, mode, workers, reopt) configuration, traced or not.
#[allow(clippy::too_many_arguments)]
fn run_config(
    fact: &Table,
    dim: &Table,
    stages: usize,
    kinds: u64,
    lit: i64,
    sockets: usize,
    mode: LlcMode,
    workers: usize,
    morsel_tuples: usize,
    reopt: Option<&ProgressiveConfig>,
    traced: bool,
) -> Run {
    let order: Vec<usize> = (0..stages).collect();
    let mut pipeline = build(fact, dim, stages, kinds, lit);
    let mut pool = CpuPool::with_topology(CpuConfig::tiny_test(), workers, mode, sockets);
    if traced {
        let sink = Arc::new(MemorySink::new());
        let tracer = Arc::new(Tracer::for_workers(sink.clone(), workers));
        let report = run_parallel_pipeline_traced(
            &mut pipeline,
            &order,
            MorselConfig::new(morsel_tuples),
            &mut pool,
            reopt,
            &tracer,
            7,
        )
        .expect("traced run succeeds");
        Run {
            report,
            records: sink.take(),
            lanes: tracer.lanes(),
        }
    } else {
        let report = run_parallel_pipeline(
            &mut pipeline,
            &order,
            MorselConfig::new(morsel_tuples),
            &mut pool,
            reopt,
        )
        .expect("untraced run succeeds");
        Run {
            report,
            records: Vec::new(),
            lanes: 0,
        }
    }
}

proptest! {
    /// The tracer never moves anything the simulator measures, and what
    /// it captures is complete and well-formed.
    #[test]
    fn tracing_is_non_invasive(
        stages in 2usize..4,
        kinds in any::<u64>(),
        lit in 100i64..900,
        seed in any::<u64>(),
        workers in 1usize..9,
        morsel_tuples in 128usize..1500,
    ) {
        let (fact, dim) = tables(seed);
        let config = ProgressiveConfig { reop_interval: 2, ..Default::default() };
        for sockets in [1usize, 2] {
            if sockets > workers {
                continue;
            }
            for mode in [LlcMode::Private, LlcMode::Shared] {
                for progressive in [false, true] {
                    let reopt = progressive.then_some(&config);
                    let plain = run_config(
                        &fact, &dim, stages, kinds, lit,
                        sockets, mode, workers, morsel_tuples, reopt, false,
                    );
                    let traced = run_config(
                        &fact, &dim, stages, kinds, lit,
                        sockets, mode, workers, morsel_tuples, reopt, true,
                    );

                    // Results: identical always.
                    prop_assert_eq!(
                        traced.report.qualified, plain.report.qualified,
                        "sockets={} mode={:?} workers={} progressive={}",
                        sockets, mode, workers, progressive
                    );
                    prop_assert_eq!(traced.report.sum, plain.report.sum);
                    prop_assert_eq!(
                        traced.report.socket_orders.len(),
                        plain.report.socket_orders.len()
                    );

                    // Full-report bit-identity — accepted orders,
                    // per-worker cycles, counters — wherever the
                    // untraced run itself is cycle-deterministic. (With
                    // reopt on a multi-worker pool, *which* rounds run
                    // is host-interleaving-elastic by design, so two
                    // untraced runs may already publish different
                    // near-optimal orders; tracing can only be held to
                    // the determinism the engine itself provides.)
                    if !progressive || workers == 1 {
                        prop_assert_eq!(
                            &traced.report.final_order,
                            &plain.report.final_order
                        );
                        prop_assert_eq!(
                            &traced.report.socket_orders,
                            &plain.report.socket_orders
                        );
                        prop_assert_eq!(
                            &traced.report, &plain.report,
                            "sockets={} mode={:?} workers={} progressive={}",
                            sockets, mode, workers, progressive
                        );
                    }

                    // Trace completeness: one claim event per morsel,
                    // exactly one completion, every lane in range, all
                    // tagged with the query id we passed.
                    let morsel_events = traced
                        .records
                        .iter()
                        .filter(|r| r.event.kind() == "morsel")
                        .count();
                    prop_assert_eq!(morsel_events, traced.report.morsels);
                    let completions = traced
                        .records
                        .iter()
                        .filter(|r| r.event.kind() == "complete")
                        .count();
                    prop_assert_eq!(completions, 1);
                    prop_assert!(traced
                        .records
                        .iter()
                        .all(|r| r.stamp.lane < traced.lanes && r.query == 7));

                    // The Chrome-trace export of exactly these records
                    // must parse.
                    let json = chrome_trace(&traced.records);
                    prop_assert!(validate_json(&json).is_ok());
                }
            }
        }
    }

    /// A disabled tracer (the default, hot-path-off configuration)
    /// behaves exactly like no tracer: nothing is recorded, and the
    /// report still matches the untraced run bit-for-bit when the run
    /// is cycle-deterministic.
    #[test]
    fn disabled_tracer_records_nothing(
        stages in 2usize..4,
        kinds in any::<u64>(),
        lit in 100i64..900,
        seed in any::<u64>(),
        workers in 1usize..5,
        morsel_tuples in 128usize..1500,
    ) {
        let (fact, dim) = tables(seed);
        let order: Vec<usize> = (0..stages).collect();

        let mut plain_pipeline = build(&fact, &dim, stages, kinds, lit);
        let mut plain_pool = CpuPool::new(CpuConfig::tiny_test(), workers);
        let plain = run_parallel_pipeline(
            &mut plain_pipeline,
            &order,
            MorselConfig::new(morsel_tuples),
            &mut plain_pool,
            None,
        )
        .expect("untraced run succeeds");

        let tracer = Arc::new(Tracer::disabled());
        let mut traced_pipeline = build(&fact, &dim, stages, kinds, lit);
        let mut traced_pool = CpuPool::new(CpuConfig::tiny_test(), workers);
        let traced = run_parallel_pipeline_traced(
            &mut traced_pipeline,
            &order,
            MorselConfig::new(morsel_tuples),
            &mut traced_pool,
            None,
            &tracer,
            0,
        )
        .expect("disabled-tracer run succeeds");

        prop_assert_eq!(&traced, &plain);
        prop_assert!(!tracer.enabled());
    }

    /// The per-stage cycle profiler is non-invasive and conservative:
    /// attaching it never moves a result, full-report bit-identity holds
    /// exactly where the engine itself is cycle-deterministic, and every
    /// attributed cycle is accounted for bit-exactly — per worker,
    /// stage + optimizer lanes equal the reported cycles, adding idle
    /// reaches the pool wall clock, and the pool-wide attributed total
    /// is `wall × workers`.
    #[test]
    fn profiler_conserves_and_is_non_invasive(
        stages in 2usize..4,
        kinds in any::<u64>(),
        lit in 100i64..900,
        seed in any::<u64>(),
        workers in 1usize..9,
        morsel_tuples in 128usize..1500,
    ) {
        let (fact, dim) = tables(seed);
        let config = ProgressiveConfig { reop_interval: 2, ..Default::default() };
        let order: Vec<usize> = (0..stages).collect();
        for sockets in [1usize, 2] {
            if sockets > workers {
                continue;
            }
            for mode in [LlcMode::Private, LlcMode::Shared] {
                for progressive in [false, true] {
                    let reopt = progressive.then_some(&config);
                    let plain = run_config(
                        &fact, &dim, stages, kinds, lit,
                        sockets, mode, workers, morsel_tuples, reopt, false,
                    );

                    let profiler = Arc::new(Profiler::new(workers));
                    let obs = ExecObservers::none().with_profiler(Arc::clone(&profiler));
                    let mut pipeline = build(&fact, &dim, stages, kinds, lit);
                    let mut pool =
                        CpuPool::with_topology(CpuConfig::tiny_test(), workers, mode, sockets);
                    let report = run_parallel_pipeline_observed(
                        &mut pipeline,
                        &order,
                        MorselConfig::new(morsel_tuples),
                        &mut pool,
                        reopt,
                        &obs,
                    )
                    .expect("profiled run succeeds");

                    // Results: identical always.
                    prop_assert_eq!(
                        report.qualified, plain.report.qualified,
                        "sockets={} mode={:?} workers={} progressive={}",
                        sockets, mode, workers, progressive
                    );
                    prop_assert_eq!(report.sum, plain.report.sum);

                    // Full-report bit-identity wherever the engine itself
                    // is cycle-deterministic (same contract as tracing).
                    if !progressive || workers == 1 {
                        prop_assert_eq!(
                            &report, &plain.report,
                            "sockets={} mode={:?} workers={} progressive={}",
                            sockets, mode, workers, progressive
                        );
                    }

                    // Conservation, bit-exact against this run's report.
                    prop_assert!(profiler.finished());
                    prop_assert!(
                        profiler.conserves(),
                        "sockets={} mode={:?} workers={} progressive={}",
                        sockets, mode, workers, progressive
                    );
                    prop_assert_eq!(profiler.wall_cycles(), report.wall_cycles);
                    for w in 0..workers {
                        let (stage, opt, idle) = profiler.worker_lanes(w);
                        prop_assert_eq!(stage + opt, report.per_worker_cycles[w]);
                        prop_assert_eq!(stage + opt + idle, report.wall_cycles);
                    }
                    prop_assert_eq!(
                        profiler.total_attributed(),
                        report.wall_cycles * workers as u64
                    );

                    // Attribution lands only on stages the pipeline has,
                    // and the stage totals plus every optimizer lane
                    // re-add to the pool's busy cycles.
                    let totals = profiler.stage_totals();
                    prop_assert!(totals.keys().all(|&s| s < stages));
                    let opt_total: u64 =
                        (0..workers).map(|w| profiler.worker_lanes(w).1).sum();
                    prop_assert_eq!(
                        totals.values().sum::<u64>() + opt_total,
                        report.per_worker_cycles.iter().sum::<u64>()
                    );

                    // The profiler's own Chrome-trace export must parse.
                    prop_assert!(validate_json(&profiler.chrome_trace()).is_ok());
                }
            }
        }
    }
}
