//! Property: the shared-LLC socket model moves *cycles*, never results.
//! For random mixed pipelines swept across worker counts and morsel
//! sizes, execution on a shared-socket pool is bit-identical to the
//! private-LLC pool and to the serial single-core executor — with and
//! without progressive reoptimization, i.e. regardless of how the
//! contended capacity steers the optimizer's decisions.
//!
//! Case count is the vendored proptest default (256), pinnable via the
//! upstream-compatible `PROPTEST_CASES` environment variable.

use proptest::prelude::*;

use popt::core::exec::pipeline::{FilterOp, Pipeline};
use popt::core::parallel::{run_parallel_pipeline, MorselConfig};
use popt::core::predicate::CompareOp;
use popt::core::progressive::ProgressiveConfig;
use popt::cpu::{CpuConfig, CpuPool, LlcMode, SimCpu};
use popt::storage::{AddressSpace, ColumnData, Table};
use popt_bench::figures::workload::xorshift64;

const ROWS: usize = 2_048;

/// Fact with value columns and a random FK into a dimension big enough
/// to feel the tiny test hierarchy's LLC — so private and shared pools
/// really do simulate different cache behaviour while the property
/// demands identical results.
fn tables(seed: u64) -> (Table, Table) {
    let dim_n = ROWS / 2;
    let mut state = seed | 1;
    let mut space = AddressSpace::new();
    let mut fact = Table::new("fact");
    for c in 0..3 {
        let data: Vec<i32> = (0..ROWS)
            .map(|_| (xorshift64(&mut state) % 1000) as i32)
            .collect();
        fact.add_column(format!("val{c}"), ColumnData::I32(data), &mut space);
    }
    fact.add_column(
        "fk",
        ColumnData::I32(
            (0..ROWS)
                .map(|_| (xorshift64(&mut state) % dim_n as u64) as i32)
                .collect(),
        ),
        &mut space,
    );
    let mut dim_space = AddressSpace::new();
    let mut dim = Table::new("dim");
    dim.add_column(
        "payload",
        ColumnData::I32(
            (0..dim_n)
                .map(|_| (xorshift64(&mut state) % 1000) as i32)
                .collect(),
        ),
        &mut dim_space,
    );
    (fact, dim)
}

/// Random mixed pipeline: bit `k` of `kinds` picks select vs. join for
/// stage `k`.
fn build<'t>(fact: &'t Table, dim: &'t Table, stages: usize, kinds: u64, lit: i64) -> Pipeline<'t> {
    let mut ops = Vec::new();
    for k in 0..stages {
        let op = if (kinds >> k) & 1 == 1 {
            FilterOp::join_filter(
                fact,
                "fk",
                dim,
                "payload",
                CompareOp::Lt,
                lit,
                k as u32,
                100,
            )
            .expect("join compiles")
        } else {
            FilterOp::select(fact, &format!("val{k}"), CompareOp::Lt, lit, k as u32, 0)
                .expect("select compiles")
        };
        ops.push(op);
    }
    Pipeline::new(ops, fact.rows())
        .expect("pipeline")
        .with_aggregate(fact, "val0")
        .expect("aggregate")
}

proptest! {
    /// Shared-LLC mode on/off × reopt on/off × workers × morsel sizes:
    /// every combination produces the serial executor's exact bits.
    #[test]
    fn contention_never_moves_results(
        stages in 2usize..4,
        kinds in any::<u64>(),
        lit in 100i64..900,
        seed in any::<u64>(),
        workers in 1usize..9,
        morsel_tuples in 128usize..1500,
    ) {
        let (fact, dim) = tables(seed);
        let serial = build(&fact, &dim, stages, kinds, lit);
        let mut cpu = SimCpu::new(CpuConfig::tiny_test());
        let expect = serial.run_range(&mut cpu, 0, ROWS);

        for mode in [LlcMode::Private, LlcMode::Shared] {
            for progressive in [false, true] {
                let mut pipeline = build(&fact, &dim, stages, kinds, lit);
                let mut pool = CpuPool::with_mode(CpuConfig::tiny_test(), workers, mode);
                let config = ProgressiveConfig { reop_interval: 2, ..Default::default() };
                let report = run_parallel_pipeline(
                    &mut pipeline,
                    &(0..stages).collect::<Vec<_>>(),
                    MorselConfig::new(morsel_tuples),
                    &mut pool,
                    progressive.then_some(&config),
                ).expect("parallel run succeeds");
                prop_assert_eq!(
                    report.qualified, expect.qualified,
                    "mode={:?} workers={} morsel={} progressive={}",
                    mode, workers, morsel_tuples, progressive
                );
                prop_assert_eq!(report.sum, expect.sum);
                // The partition actually engaged: a multi-worker shared
                // socket leaves every core less than the full LLC.
                if mode == LlcMode::Shared && workers > 1 {
                    let full = pool.config().llc().capacity_bytes;
                    prop_assert!(pool.min_effective_llc_bytes() < full);
                }
            }
        }
    }
}
