//! Cross-crate integration: the 3-join star-schema workload
//! (fact ⋈ customer ⋈ supplier ⋈ part plus a selection).
//!
//! This is the multi-join pipeline the ROADMAP asked for: with three FK
//! probes contributing to every L3 sample, per-stage clustering
//! calibration must still attribute locality to the right stage — the
//! co-clustered customer join has to end up in front of both random
//! joins even though it probes the *largest* dimension, and the
//! reordering must never change the query result, single- or
//! multi-worker.

use popt::core::parallel::{run_parallel_program, MorselConfig};
use popt::core::progressive::{run_progressive_program, ProgressiveConfig, VectorConfig};
use popt::cpu::{CpuPool, SimCpu};
use popt_bench::figures::workload::{star_program, star_schema, StarSchema};

mod common;
use common::small_cache_cpu;

const ROWS: usize = 1 << 17;

fn star() -> StarSchema {
    star_schema(ROWS, 0x57A12)
}

fn config() -> ProgressiveConfig {
    ProgressiveConfig {
        reop_interval: 2,
        ..Default::default()
    }
}

/// Plan-order indices of `star_program` with a selection: 0 = select,
/// 1 = customer (co-clustered), 2 = supplier (random), 3 = part (random).
const CUSTOMER: usize = 1;
const SUPPLIER: usize = 2;
const PART: usize = 3;

#[test]
fn calibration_attributes_locality_with_three_probes_per_sample() {
    let star = star();
    // Ground truth from the static plan order.
    let static_program = star_program(&star, Some(0.5), [0.5, 0.5, 0.5]);
    let mut cpu1 = SimCpu::new(small_cache_cpu());
    let expect = static_program.run_range(&mut cpu1, 0, ROWS);
    assert!(expect.sum > 0, "aggregate must actually sum");

    // Progressive from the fully reversed order: both random joins ahead
    // of the co-clustered one, the selection last.
    let mut program = star_program(&star, Some(0.5), [0.5, 0.5, 0.5]);
    let mut cpu2 = SimCpu::new(small_cache_cpu());
    let prog = run_progressive_program(
        &mut program,
        &[PART, SUPPLIER, CUSTOMER, 0],
        VectorConfig {
            vector_tuples: 4_096,
            max_vectors: None,
        },
        &mut cpu2,
        &config(),
    )
    .unwrap();

    assert_eq!(prog.qualified, expect.qualified);
    assert_eq!(prog.sum, expect.sum);
    // Locality attribution: the co-clustered customer join (the largest
    // dimension!) must rank ahead of both random joins — exactly what a
    // size-based textbook order gets wrong.
    let pos = |stage: usize| {
        prog.final_peo
            .iter()
            .position(|&j| j == stage)
            .expect("stage present")
    };
    assert!(
        pos(CUSTOMER) < pos(SUPPLIER) && pos(CUSTOMER) < pos(PART),
        "customer join not front of the random joins: {:?} (switches {:?})",
        prog.final_peo,
        prog.switches
    );
}

#[test]
fn star_parallel_matches_serial_for_one_and_many_workers() {
    let star = star();
    let static_program = star_program(&star, Some(0.5), [0.5, 0.5, 0.5]);
    let mut cpu = SimCpu::new(small_cache_cpu());
    let expect = static_program.run_range(&mut cpu, 0, ROWS);

    // Serial progressive reference order.
    let mut serial_program = star_program(&star, Some(0.5), [0.5, 0.5, 0.5]);
    let mut serial_cpu = SimCpu::new(small_cache_cpu());
    let serial = run_progressive_program(
        &mut serial_program,
        &[PART, SUPPLIER, CUSTOMER, 0],
        VectorConfig {
            vector_tuples: 4_096,
            max_vectors: None,
        },
        &mut serial_cpu,
        &config(),
    )
    .unwrap();
    assert_eq!(serial.qualified, expect.qualified);

    for workers in [1usize, 4, 8] {
        let mut program = star_program(&star, Some(0.5), [0.5, 0.5, 0.5]);
        let mut pool = CpuPool::new(small_cache_cpu(), workers);
        // Cache-friendly morsels (L2-fitted) rather than one fixed size:
        // convergence needs enough morsel boundaries per worker for the
        // three calibration probes plus the estimator's trials — at 8
        // workers a coarse 4096-tuple carve of this table leaves only 4
        // boundaries per worker, too few to finish calibrating.
        let morsels = MorselConfig::cache_friendly(&small_cache_cpu(), 32);
        assert!(morsels.morsel_tuples < 4_096, "sizing tracks the tiny L2");
        let report = run_parallel_program(
            &mut program,
            &[PART, SUPPLIER, CUSTOMER, 0],
            morsels,
            &mut pool,
            Some(&config()),
        )
        .unwrap();
        assert_eq!(report.qualified, expect.qualified, "workers={workers}");
        assert_eq!(report.sum, expect.sum, "workers={workers}");
        let pos = |stage: usize| {
            report
                .final_order
                .iter()
                .position(|&j| j == stage)
                .expect("stage present")
        };
        assert!(
            pos(CUSTOMER) < pos(SUPPLIER) && pos(CUSTOMER) < pos(PART),
            "workers={workers}: {:?}",
            report.final_order
        );
    }
}
