//! Integration tests for the multi-query serving layer: scheduler
//! fairness and isolation, result exactness under interleaving, warm
//! order-cache reuse, and admission/idle accounting.

use popt::core::exec::pipeline::{FilterOp, Pipeline};
use popt::core::exec::scan::CompiledSelection;
use popt::core::plan::SelectionPlan;
use popt::core::predicate::{CompareOp, Predicate};
use popt::core::progressive::ProgressiveConfig;
use popt::core::serve::{Priority, QueryServer, QuerySpec, ServeConfig};
use popt::core::MorselConfig;
use popt::cpu::{CpuConfig, CpuPool, LlcMode, SimCpu};
use popt::storage::{AddressSpace, ColumnData, Table};
use popt_bench::figures::workload::xorshift64;

const ROWS: usize = 1 << 15;

/// Fact with three value columns and a random FK into a payload
/// dimension; uniform over 0..1000 so literals address selectivity.
fn tables(seed: u64) -> (Table, Table) {
    let dim_n = ROWS / 4;
    let mut state = seed | 1;
    let mut space = AddressSpace::new();
    let mut fact = Table::new("fact");
    for c in 0..3 {
        let data: Vec<i32> = (0..ROWS)
            .map(|_| (xorshift64(&mut state) % 1000) as i32)
            .collect();
        fact.add_column(format!("val{c}"), ColumnData::I32(data), &mut space);
    }
    fact.add_column(
        "fk",
        ColumnData::I32(
            (0..ROWS)
                .map(|_| (xorshift64(&mut state) % dim_n as u64) as i32)
                .collect(),
        ),
        &mut space,
    );
    let mut dim_space = AddressSpace::new();
    let mut dim = Table::new("dim");
    dim.add_column(
        "payload",
        ColumnData::I32(
            (0..dim_n)
                .map(|_| (xorshift64(&mut state) % 1000) as i32)
                .collect(),
        ),
        &mut dim_space,
    );
    (fact, dim)
}

fn scan_plan(lits: [i64; 3]) -> SelectionPlan {
    SelectionPlan::new(
        vec![
            Predicate::new("val0", CompareOp::Lt, lits[0]),
            Predicate::new("val1", CompareOp::Lt, lits[1]),
            Predicate::new("val2", CompareOp::Lt, lits[2]),
        ],
        vec!["val0".into()],
    )
    .unwrap()
}

fn pipeline<'t>(fact: &'t Table, dim: &'t Table, lit: i64) -> Pipeline<'t> {
    let sel = FilterOp::select(fact, "val0", CompareOp::Lt, lit, 0, 30).unwrap();
    let join =
        FilterOp::join_filter(fact, "fk", dim, "payload", CompareOp::Lt, lit, 1, 100).unwrap();
    Pipeline::new(vec![sel, join], fact.rows())
        .unwrap()
        .with_aggregate(fact, "val1")
        .unwrap()
}

fn config(reopt: bool) -> ServeConfig {
    ServeConfig {
        morsels: MorselConfig::new(1024),
        reopt: reopt.then(|| ProgressiveConfig {
            reop_interval: 3,
            ..Default::default()
        }),
        use_order_cache: true,
        dynamic_repartition: false,
    }
}

/// A mixed batch of scans and pipelines with staggered arrivals and
/// mixed priorities stays bit-identical to solo single-core execution
/// at every worker count, with and without reoptimization.
#[test]
fn mixed_batch_matches_solo_execution() {
    let (fact, dim) = tables(0xA11CE);
    let plan = scan_plan([200, 500, 800]);

    let mut cpu = SimCpu::new(CpuConfig::tiny_test());
    let scan_ref = CompiledSelection::compile(&fact, &plan, &[2, 1, 0])
        .unwrap()
        .run_range(&mut cpu, 0, ROWS);
    let mut cpu = SimCpu::new(CpuConfig::tiny_test());
    let pipe_ref = pipeline(&fact, &dim, 500).run_range(&mut cpu, 0, ROWS);

    for reopt in [false, true] {
        for workers in [1usize, 2, 4] {
            let mut server = QueryServer::new(config(reopt));
            server.admit(QuerySpec::scan(
                "scan-hi",
                &fact,
                plan.clone(),
                vec![2, 1, 0],
                Priority::High,
                0,
            ));
            server.admit(QuerySpec::pipeline(
                "pipe-norm",
                pipeline(&fact, &dim, 500),
                vec![1, 0],
                Priority::Normal,
                5_000,
            ));
            server.admit(QuerySpec::scan(
                "scan-low",
                &fact,
                plan.clone(),
                vec![0, 1, 2],
                Priority::Low,
                10_000,
            ));
            let mut pool = CpuPool::new(CpuConfig::tiny_test(), workers);
            let report = server.run(&mut pool).unwrap();
            assert_eq!(report.queries.len(), 3);
            for q in &report.queries {
                let (qualified, sum) = if q.label.starts_with("scan") {
                    (scan_ref.qualified, scan_ref.sum)
                } else {
                    (pipe_ref.qualified, pipe_ref.sum)
                };
                assert_eq!(
                    q.qualified, qualified,
                    "{} diverged (workers={workers}, reopt={reopt})",
                    q.label
                );
                assert_eq!(q.sum, sum, "{} sum diverged", q.label);
                assert!(q.latency_cycles >= q.queue_cycles);
            }
            assert_eq!(report.workers, workers);
            assert!(report.wall_cycles > 0);
            assert!(
                report.occupancy > 0.0 && report.occupancy <= 1.0 + 1e-12,
                "occupancy {} out of range",
                report.occupancy
            );
            // Wall clock bounds every worker's busy time.
            for (&busy, &idle) in report
                .per_worker_busy_cycles
                .iter()
                .zip(&report.per_worker_idle_cycles)
            {
                assert!(busy + idle <= report.wall_cycles);
            }
        }
    }
}

/// Priority isolation: a high-priority query's latency is barely moved
/// (≤ 10%) by a low-priority background scan hogging the leftover
/// capacity — the stride weights cap the background's slot share at
/// 1/17 while the foreground query is active.
#[test]
fn high_priority_latency_isolated_from_background_scan() {
    let (fact, dim) = tables(0xB0B);
    let _ = &dim;
    let plan = scan_plan([300, 500, 700]);
    let workers = 4;

    let latency_of = |with_background: bool| -> u64 {
        // No reopt: this pins scheduling behaviour, not convergence.
        let mut server = QueryServer::new(ServeConfig {
            morsels: MorselConfig::new(512),
            reopt: None,
            use_order_cache: false,
            dynamic_repartition: false,
        });
        server.admit(QuerySpec::scan(
            "fg",
            &fact,
            plan.clone(),
            vec![0, 1, 2],
            Priority::High,
            0,
        ));
        if with_background {
            // One weight-1 background scan against the weight-16
            // foreground: the stride scheduler caps its slot share at
            // 1/17 while the foreground is active, so the foreground
            // loses at most ~6% of the pool.
            server.admit(QuerySpec::scan(
                "bg",
                &fact,
                plan.clone(),
                vec![0, 1, 2],
                Priority::Low,
                0,
            ));
        }
        let mut pool = CpuPool::new(CpuConfig::tiny_test(), workers);
        let report = server.run(&mut pool).unwrap();
        report
            .queries
            .iter()
            .find(|q| q.label == "fg")
            .expect("foreground query reported")
            .latency_cycles
    };

    let alone = latency_of(false);
    let contended = latency_of(true);
    assert!(
        (contended as f64) <= (alone as f64) * 1.10,
        "high-priority latency inflated {alone} -> {contended} (> 10%)"
    );
}

/// The order cache warms repeated templates: the second batch starts
/// from the first's converged order and calibration, lands on the same
/// final order, and pays less execution+optimizer cost.
#[test]
fn warm_cache_reuses_converged_state() {
    let (fact, dim) = tables(0xCAFE);
    let workers = 2;

    let mut server = QueryServer::new(config(true));
    server.admit(QuerySpec::pipeline(
        "pipe",
        pipeline(&fact, &dim, 500),
        vec![1, 0],
        Priority::Normal,
        0,
    ));
    let mut pool = CpuPool::new(CpuConfig::tiny_test(), workers);
    let cold = server.run(&mut pool).unwrap();
    assert!(!cold.queries[0].warm_start, "first sighting must be cold");
    assert_eq!(server.cache().len(), 1);

    server.admit(QuerySpec::pipeline(
        "pipe",
        pipeline(&fact, &dim, 500),
        vec![1, 0],
        Priority::Normal,
        0,
    ));
    let mut pool = CpuPool::new(CpuConfig::tiny_test(), workers);
    let warm = server.run(&mut pool).unwrap();
    assert!(warm.queries[0].warm_start, "repeat template must hit");
    assert_eq!(
        warm.queries[0].final_order, cold.queries[0].final_order,
        "warm run must keep the converged order"
    );
    assert_eq!(warm.queries[0].qualified, cold.queries[0].qualified);
    assert_eq!(warm.queries[0].sum, cold.queries[0].sum);
    assert!(
        warm.queries[0].cost_cycles() < cold.queries[0].cost_cycles(),
        "warm {} !< cold {}",
        warm.queries[0].cost_cycles(),
        cold.queries[0].cost_cycles()
    );

    // A slid literal is the *same* template: parameterized queries
    // (`val0 < ?`) share one cache entry, so the tweaked instance
    // warm-starts from the converged state of its 500-literal mate.
    server.admit(QuerySpec::pipeline(
        "pipe-tweaked",
        pipeline(&fact, &dim, 501),
        vec![1, 0],
        Priority::Normal,
        0,
    ));
    let mut pool = CpuPool::new(CpuConfig::tiny_test(), workers);
    let tweaked = server.run(&mut pool).unwrap();
    assert!(
        tweaked.queries[0].warm_start,
        "a slid literal must reuse the template's converged order"
    );
    assert_eq!(server.cache().len(), 1, "still one template entry");

    // A *structural* change (different comparison operator) is a new
    // template and must miss.
    let sel = FilterOp::select(&fact, "val0", CompareOp::Ge, 500, 0, 30).unwrap();
    let join =
        FilterOp::join_filter(&fact, "fk", &dim, "payload", CompareOp::Lt, 500, 1, 100).unwrap();
    let restructured = Pipeline::new(vec![sel, join], fact.rows())
        .unwrap()
        .with_aggregate(&fact, "val1")
        .unwrap();
    server.admit(QuerySpec::pipeline(
        "pipe-restructured",
        restructured,
        vec![1, 0],
        Priority::Normal,
        0,
    ));
    let mut pool = CpuPool::new(CpuConfig::tiny_test(), workers);
    let changed = server.run(&mut pool).unwrap();
    assert!(
        !changed.queries[0].warm_start,
        "an operator change is a different template"
    );
    assert_eq!(server.cache().len(), 2);
}

/// The order cache is bypassed entirely when reoptimization is off: a
/// static run converges nowhere, so recording its start order would
/// poison later warm starts with whatever order the first instance
/// happened to use.
#[test]
fn static_runs_bypass_the_order_cache() {
    let (fact, _dim) = tables(0x5AFE);
    let plan = scan_plan([300, 500, 700]);
    let mut server = QueryServer::new(ServeConfig {
        morsels: MorselConfig::new(1024),
        reopt: None,
        use_order_cache: true,
        dynamic_repartition: false,
    });
    server.admit(QuerySpec::scan(
        "q",
        &fact,
        plan.clone(),
        vec![2, 1, 0],
        Priority::Normal,
        0,
    ));
    let mut pool = CpuPool::new(CpuConfig::tiny_test(), 2);
    let first = server.run(&mut pool).unwrap();
    assert!(!first.queries[0].warm_start);
    assert_eq!(server.cache().len(), 0, "static runs must not record");

    // A repeat of the template with a *better* submitted order must keep
    // it, not be overridden by a stale "converged" entry.
    server.admit(QuerySpec::scan(
        "q",
        &fact,
        plan,
        vec![0, 1, 2],
        Priority::Normal,
        0,
    ));
    let second = server.run(&mut pool).unwrap();
    assert!(!second.queries[0].warm_start);
    assert_eq!(second.queries[0].final_order, vec![0, 1, 2]);
}

/// Future arrivals idle the pool forward instead of spinning or
/// serving early; the report separates idle from busy capacity.
#[test]
fn future_arrival_idles_the_pool() {
    let (fact, _dim) = tables(0x1D1E);
    let plan = scan_plan([100, 500, 900]);
    let arrival = 2_000_000u64;

    let mut server = QueryServer::new(config(false));
    server.admit(QuerySpec::scan(
        "late",
        &fact,
        plan,
        vec![0, 1, 2],
        Priority::Normal,
        arrival,
    ));
    let mut pool = CpuPool::new(CpuConfig::tiny_test(), 2);
    let report = server.run(&mut pool).unwrap();
    let q = &report.queries[0];
    assert!(report.wall_cycles >= arrival, "pool must wait for arrival");
    assert!(report.idle_cycles > 0, "waiting must be accounted as idle");
    assert!(report.occupancy < 1.0);
    assert!(
        q.latency_cycles < report.wall_cycles,
        "latency excludes pre-arrival time: {} vs wall {}",
        q.latency_cycles,
        report.wall_cycles
    );
    // The pool's own occupancy accounting agrees that cores idled.
    assert!(pool.idle_cycles() > 0);
    assert!(pool.occupancy() < 1.0);
    assert!(pool.horizon_cycles() >= arrival);
}

/// Config validation and degenerate batches.
#[test]
fn config_validation_and_empty_batches() {
    let (fact, _dim) = tables(7);
    let plan = scan_plan([500, 500, 500]);

    // Empty batch: a defined empty report, no division by zero.
    let mut server = QueryServer::new(config(true));
    let mut pool = CpuPool::new(CpuConfig::tiny_test(), 2);
    let report = server.run(&mut pool).unwrap();
    assert!(report.queries.is_empty());
    assert_eq!(report.wall_cycles, 0);
    assert_eq!(report.occupancy, 1.0);
    assert_eq!(report.throughput_qps(), 0.0);
    assert!(report.latency_percentile(None, 0.5).is_none());

    // reop_interval = 0 is rejected before any thread spawns.
    let mut server = QueryServer::new(ServeConfig {
        reopt: Some(ProgressiveConfig {
            reop_interval: 0,
            ..Default::default()
        }),
        ..ServeConfig::default()
    });
    server.admit(QuerySpec::scan(
        "q",
        &fact,
        plan.clone(),
        vec![0, 1, 2],
        Priority::Normal,
        0,
    ));
    assert!(server.run(&mut pool).is_err());

    // morsel_tuples = 0 is rejected by the dispatcher.
    let mut server = QueryServer::new(ServeConfig {
        morsels: MorselConfig::new(0),
        reopt: None,
        use_order_cache: false,
        dynamic_repartition: false,
    });
    server.admit(QuerySpec::scan(
        "q",
        &fact,
        plan,
        vec![0, 1, 2],
        Priority::Normal,
        0,
    ));
    assert!(server.run(&mut pool).is_err());
    assert_eq!(
        server.queued(),
        1,
        "a rejected batch must stay queued for retry"
    );
}

/// A batch rejected mid-validation (one bad query among good ones)
/// keeps the whole queue; fixing the config and retrying serves it.
#[test]
fn rejected_batch_is_not_drained() {
    let (fact, _dim) = tables(0xEE);
    let good = scan_plan([400, 500, 600]);
    let bad = SelectionPlan::new(
        vec![Predicate::new("no_such_column", CompareOp::Lt, 1)],
        vec![],
    )
    .unwrap();

    let mut server = QueryServer::new(config(false));
    server.admit(QuerySpec::scan(
        "good",
        &fact,
        good,
        vec![0, 1, 2],
        Priority::Normal,
        0,
    ));
    server.admit(QuerySpec::scan(
        "bad",
        &fact,
        bad,
        vec![0],
        Priority::Low,
        0,
    ));
    let mut pool = CpuPool::new(CpuConfig::tiny_test(), 2);
    assert!(server.run(&mut pool).is_err());
    assert_eq!(server.queued(), 2, "both queries must survive the error");

    // Successful runs drain.
    let mut server2 = QueryServer::new(config(false));
    server2.admit(QuerySpec::scan(
        "ok",
        &fact,
        scan_plan([400, 500, 600]),
        vec![0, 1, 2],
        Priority::Normal,
        0,
    ));
    let report = server2.run(&mut pool).unwrap();
    assert_eq!(report.queries.len(), 1);
    assert_eq!(server2.queued(), 0, "a served batch drains the queue");
}

/// Stride shares: with two long queries of unequal priority arriving
/// together, the high-priority one must finish first by a wide margin
/// (it owns 16/17 of the slots while both are active).
#[test]
fn priorities_order_completion_under_contention() {
    let (fact, _dim) = tables(0xFA1);
    let plan = scan_plan([500, 500, 500]);
    let mut server = QueryServer::new(config(false));
    server.admit(QuerySpec::scan(
        "hi",
        &fact,
        plan.clone(),
        vec![0, 1, 2],
        Priority::High,
        0,
    ));
    server.admit(QuerySpec::scan(
        "lo",
        &fact,
        plan,
        vec![0, 1, 2],
        Priority::Low,
        0,
    ));
    // One worker: completion order is purely the scheduler's doing.
    let mut pool = CpuPool::new(CpuConfig::tiny_test(), 1);
    let report = server.run(&mut pool).unwrap();
    let hi = &report.queries[0];
    let lo = &report.queries[1];
    assert!(
        hi.latency_cycles * 3 < lo.latency_cycles * 2,
        "high priority must finish well before low: {} vs {}",
        hi.latency_cycles,
        lo.latency_cycles
    );
    // Both still produce identical results.
    assert_eq!(hi.qualified, lo.qualified);
    assert_eq!(hi.sum, lo.sum);
}

/// Mid-run order-cache publication: a query's converged order and
/// calibration publish at *query completion* (under the coordination
/// lock), so a long open-loop stream warms its own later arrivals —
/// within one batch, without waiting for the batch to drain.
#[test]
fn completed_query_warms_a_later_arrival_in_the_same_batch() {
    let (fact, _dim) = tables(0x0A51);
    let plan = scan_plan([200, 500, 800]);
    // Far enough out that the first instance has certainly completed
    // (in simulated time) before the second arrives; with one worker
    // the host-time order matches, so the test is fully deterministic.
    let late_arrival = 100_000_000u64;

    let mut server = QueryServer::new(config(true));
    server.admit(QuerySpec::scan(
        "early",
        &fact,
        plan.clone(),
        vec![2, 1, 0],
        Priority::Normal,
        0,
    ));
    server.admit(QuerySpec::scan(
        "late",
        &fact,
        plan,
        vec![2, 1, 0],
        Priority::Normal,
        late_arrival,
    ));
    let mut pool = CpuPool::new(CpuConfig::tiny_test(), 1);
    let report = server.run(&mut pool).unwrap();
    let early = &report.queries[0];
    let late = &report.queries[1];
    assert!(
        !early.warm_start,
        "the first instance has nothing to warm from"
    );
    assert!(
        late.warm_start,
        "the later arrival must warm from its completed template mate"
    );
    assert_eq!(early.final_order, vec![0, 1, 2], "{:?}", early.switches);
    assert_eq!(late.final_order, early.final_order);
    assert!(
        late.switches.is_empty(),
        "seeded at the converged order, the warm run has nothing to switch: {:?}",
        late.switches
    );
    assert_eq!(late.qualified, early.qualified);
    assert_eq!(late.sum, early.sum);
    assert_eq!(server.cache().len(), 1);
}

/// Closed-loop instances of one template co-start and must all run cold:
/// the mid-run warm path is gated to later arrivals (`arrival > 0`), so
/// a batch that arrives together keeps batch-admission semantics
/// regardless of completion interleaving.
#[test]
fn co_starting_template_mates_stay_cold() {
    let (fact, _dim) = tables(0x0A52);
    let plan = scan_plan([200, 500, 800]);
    let mut server = QueryServer::new(config(true));
    for k in 0..3 {
        server.admit(QuerySpec::scan(
            format!("q{k}"),
            &fact,
            plan.clone(),
            vec![2, 1, 0],
            Priority::Normal,
            0,
        ));
    }
    let mut pool = CpuPool::new(CpuConfig::tiny_test(), 2);
    let report = server.run(&mut pool).unwrap();
    assert!(report.queries.iter().all(|q| !q.warm_start));
    for q in &report.queries {
        assert_eq!(q.qualified, report.queries[0].qualified);
        assert_eq!(q.sum, report.queries[0].sum);
    }
    // All three completed and published; one template, one entry.
    assert_eq!(server.cache().len(), 1);
}

/// Fact/dim pair like [`tables`] but with an explicit row count, for
/// co-runners of controlled length.
fn tables_n(rows: usize, seed: u64) -> (Table, Table) {
    let dim_n = (rows / 4).max(16);
    let mut state = seed | 1;
    let mut space = AddressSpace::new();
    let mut fact = Table::new("fact");
    for c in 0..3 {
        let data: Vec<i32> = (0..rows)
            .map(|_| (xorshift64(&mut state) % 1000) as i32)
            .collect();
        fact.add_column(format!("val{c}"), ColumnData::I32(data), &mut space);
    }
    fact.add_column(
        "fk",
        ColumnData::I32(
            (0..rows)
                .map(|_| (xorshift64(&mut state) % dim_n as u64) as i32)
                .collect(),
        ),
        &mut space,
    );
    let mut dim = Table::new("dim");
    dim.add_column(
        "payload",
        ColumnData::I32(
            (0..dim_n)
                .map(|_| (xorshift64(&mut state) % 1000) as i32)
                .collect(),
        ),
        &mut space,
    );
    (fact, dim)
}

/// Regression against the reverted-shared-cursor hazard, for dynamic
/// LLC repartitioning: every way recomputation is keyed to events in
/// the worker's *own* claim stream (a query draining locally), never to
/// global completion state another worker races to update. Two runs of
/// the same staggered batch on a multi-worker two-socket shared pool
/// must therefore produce the *entire* report — per-worker busy cycles
/// and per-query execution cycles included — bit-for-bit, and results
/// must match solo execution.
#[test]
fn dynamic_repartition_cycles_are_host_schedule_independent() {
    let (fact, dim) = tables(0xD27A);
    let plan = scan_plan([200, 500, 800]);
    let mut cpu = SimCpu::new(CpuConfig::tiny_test());
    let scan_ref = CompiledSelection::compile(&fact, &plan, &[0, 1, 2])
        .unwrap()
        .run_range(&mut cpu, 0, ROWS);
    let mut cpu = SimCpu::new(CpuConfig::tiny_test());
    let pipe_ref = pipeline(&fact, &dim, 500).run_range(&mut cpu, 0, ROWS);

    let run = || {
        let mut server = QueryServer::new(ServeConfig {
            dynamic_repartition: true,
            reopt: None,
            ..config(false)
        });
        server.admit(QuerySpec::pipeline(
            "pipe-0",
            pipeline(&fact, &dim, 500),
            vec![0, 1],
            Priority::Normal,
            0,
        ));
        server.admit(QuerySpec::scan(
            "scan-0",
            &fact,
            plan.clone(),
            vec![0, 1, 2],
            Priority::Normal,
            2_000,
        ));
        server.admit(QuerySpec::pipeline(
            "pipe-1",
            pipeline(&fact, &dim, 500),
            vec![0, 1],
            Priority::Low,
            4_000,
        ));
        let mut pool = CpuPool::with_topology(CpuConfig::tiny_test(), 4, LlcMode::Shared, 2);
        server.run(&mut pool).unwrap()
    };
    let first = run();
    let second = run();
    assert_eq!(
        first, second,
        "repartition events must be deterministic in the simulated clock"
    );
    for q in &first.queries {
        let (qualified, sum) = if q.label.starts_with("scan") {
            (scan_ref.qualified, scan_ref.sum)
        } else {
            (pipe_ref.qualified, pipe_ref.sum)
        };
        assert_eq!(q.qualified, qualified, "{} diverged", q.label);
        assert_eq!(q.sum, sum, "{} sum diverged", q.label);
    }
}

/// Dynamic repartitioning semantics on one worker: while a co-runner is
/// live the foreground query runs on a slice of the core's ways (the
/// pessimistic price of declared contention — never cheaper than
/// unpartitioned sharing), and the co-runner's *completion event* hands
/// its ways back, so a short co-runner costs the foreground measurably
/// less than a long one.
#[test]
fn dynamic_repartition_prices_co_runners_and_reclaims_at_completion() {
    let (fact, dim) = tables(0x10C0);
    let (short_fact, short_dim) = tables_n(ROWS / 8, 0xC0DE);
    let (long_fact, long_dim) = tables_n(ROWS, 0xC0DE);

    let mut cpu = SimCpu::new(CpuConfig::tiny_test());
    let fg_ref = pipeline(&fact, &dim, 500).run_range(&mut cpu, 0, ROWS);

    let fg_exec = |co_fact: &Table, co_dim: &Table, dynamic: bool| {
        let mut server = QueryServer::new(ServeConfig {
            dynamic_repartition: dynamic,
            reopt: None,
            ..config(false)
        });
        server.admit(QuerySpec::pipeline(
            "fg",
            pipeline(&fact, &dim, 500),
            vec![0, 1],
            Priority::Normal,
            0,
        ));
        server.admit(QuerySpec::pipeline(
            "co",
            pipeline(co_fact, co_dim, 500),
            vec![0, 1],
            Priority::Normal,
            0,
        ));
        let mut pool = CpuPool::new_shared(CpuConfig::tiny_test(), 1);
        let report = server.run(&mut pool).unwrap();
        let fg = report
            .queries
            .iter()
            .find(|q| q.label == "fg")
            .expect("fg served");
        assert_eq!(fg.qualified, fg_ref.qualified, "fg diverged");
        assert_eq!(fg.sum, fg_ref.sum, "fg sum diverged");
        fg.exec_cycles
    };

    let long_off = fg_exec(&long_fact, &long_dim, false);
    let long_on = fg_exec(&long_fact, &long_dim, true);
    let short_off = fg_exec(&short_fact, &short_dim, false);
    let short_on = fg_exec(&short_fact, &short_dim, true);

    assert!(
        long_on > long_off,
        "a live co-runner must cost the foreground ways: {long_on} <= {long_off}"
    );
    assert!(
        short_on >= short_off,
        "declared contention is pessimistic, never a speedup: {short_on} < {short_off}"
    );
    assert!(
        short_on < long_on,
        "the completion event must reclaim the co-runner's ways: \
         fg vs short co-runner {short_on} >= vs long {long_on}"
    );
}
